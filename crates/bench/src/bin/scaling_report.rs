//! Regenerate the paper-style scaling report: per-level comm breakdowns
//! over the NSU3D CPU counts, the fabric comparison, and measured
//! (traced-runtime) per-level message attribution plus chaos overhead.
//!
//! Usage:
//!   scaling_report [--measured] [--json PATH]
//!
//! `--measured` re-derives the workload profile from live solver runs;
//! `--json PATH` additionally writes the full report as deterministic JSON
//! (two runs with the same seed are byte-identical).

use columbia_bench::report::{per_level_table, scaling_report, MeasuredSpec};
use columbia_machine::{MachineConfig, NSU3D_CPU_COUNTS};
use columbia_rt::trace::ClockMode;

fn main() {
    let profile = columbia_bench::nsu3d_profile(columbia_bench::use_measured());
    let machine = MachineConfig::columbia_vortex();
    let spec = MeasuredSpec::default();

    columbia_bench::header(
        "scaling report",
        "per-level comm fractions, fabric comparison, chaos overhead",
    );
    let report = scaling_report(
        &profile,
        &machine,
        &NSU3D_CPU_COUNTS,
        &spec,
        ClockMode::Logical,
    );
    println!("profile: {}", profile.name);
    println!();
    print!("{}", per_level_table(&report));
    println!();
    println!(
        "shape check: coarse-level comm fraction grows monotonically with CPUs \
         (the paper's coarse-grid communication wall)"
    );

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json requires a path");
            std::fs::write(&path, report.render_pretty()).expect("write report");
            println!("wrote {path}");
        }
    }
}
