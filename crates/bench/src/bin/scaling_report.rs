//! Regenerate the paper-style scaling report: per-level comm breakdowns
//! over the NSU3D CPU counts, the fabric comparison, and measured
//! (traced-runtime) per-level message attribution plus chaos overhead.
//!
//! Usage:
//!   scaling_report [--measured] [--paper-scale] [--fabric] [--kernels] [--database] [--json PATH]
//!
//! `--measured` re-derives the workload profile from live solver runs;
//! `--paper-scale` appends real event-executor runs at the paper's rank
//! counts (512/1024/2016 cooperative rank tasks on this machine);
//! `--fabric` appends the discrete-event fabric comparison: traced halo
//! traffic replayed through the contended Columbia topologies, emergent
//! makespans against the analytic closed form;
//! `--kernels` appends the deterministic kernel-roofline table: software
//! FLOP counts and parity digests of the SoA/SIMD batch kernels with the
//! machine model's predicted sustained rate per working-set size;
//! `--database` appends the deterministic database-server storm section:
//! seeded cold/hot query storms with service counters and response
//! digests, plus the closed quarantine-refinement loop;
//! `--json PATH` additionally writes the full report as deterministic JSON
//! (two runs with the same seed are byte-identical).

use columbia_bench::report::{
    fabric_contention_section, kernel_roofline_section, paper_scale_section, per_level_table,
    scaling_report, MeasuredSpec, FABRIC_RANK_COUNTS, PAPER_WORLD_SIZES,
};
use columbia_machine::{MachineConfig, NSU3D_CPU_COUNTS};
use columbia_rt::trace::ClockMode;
use columbia_rt::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let fabric = args.iter().any(|a| a == "--fabric");
    let kernels = args.iter().any(|a| a == "--kernels");
    let database = args.iter().any(|a| a == "--database");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json requires a path").clone());

    let profile = columbia_bench::nsu3d_profile(columbia_bench::use_measured());
    let machine = MachineConfig::columbia_vortex();
    let spec = MeasuredSpec::default();

    columbia_bench::header(
        "scaling report",
        "per-level comm fractions, fabric comparison, chaos overhead",
    );
    let mut report = scaling_report(
        &profile,
        &machine,
        &NSU3D_CPU_COUNTS,
        &spec,
        ClockMode::Logical,
    );
    println!("profile: {}", profile.name);
    println!();
    print!("{}", per_level_table(&report));
    println!();
    println!(
        "shape check: coarse-level comm fraction grows monotonically with CPUs \
         (the paper's coarse-grid communication wall)"
    );

    if paper_scale {
        let section = paper_scale_section(&PAPER_WORLD_SIZES);
        if let Json::Arr(rows) = &section {
            println!();
            println!("paper-scale worlds (event executor, real rank programs):");
            for row in rows {
                let get_u = |k: &str| match row.get(k) {
                    Some(Json::UInt(n)) => *n,
                    _ => 0,
                };
                println!(
                    "  {:>5} ranks: {:>9} payload bytes, {} cycles, max degree {}",
                    get_u("ranks"),
                    get_u("total_bytes"),
                    get_u("cycles"),
                    get_u("max_degree"),
                );
            }
        }
        if let Json::Obj(fields) = &mut report {
            fields.push(("paper_scale".into(), section));
        }
    }

    if fabric {
        let section = fabric_contention_section(&FABRIC_RANK_COUNTS);
        if let Json::Arr(rows) = &section {
            println!();
            println!("contended fabric replay (traced halo traffic, round-robin arbiter):");
            for row in rows {
                let num = |k: &str, f: &str| match row.get(k).and_then(|r| r.get(f)) {
                    Some(Json::Num(x)) => *x,
                    _ => f64::NAN,
                };
                let slow = |k: &str| match row.get(k) {
                    Some(Json::Num(x)) => *x,
                    _ => f64::NAN,
                };
                let ranks = match row.get("ranks") {
                    Some(Json::UInt(n)) => *n,
                    _ => 0,
                };
                println!(
                    "  {:>3} ranks: IB {:>9.1}us vs NL {:>8.1}us -> slowdown {:>5.2}x \
                     (analytic {:>4.2}x)",
                    ranks,
                    1e6 * num("infiniband", "contended_s"),
                    1e6 * num("numalink", "contended_s"),
                    slow("ib_slowdown"),
                    slow("analytic_ib_slowdown"),
                );
            }
        }
        if let Json::Obj(fields) = &mut report {
            fields.push(("fabric_contention".into(), section));
        }
    }

    if kernels {
        let section = kernel_roofline_section();
        if let Json::Arr(rows) = &section {
            println!();
            println!("kernel roofline (deterministic: flops, parity digests, predicted rate):");
            println!(
                "  {:<16} {:>9} {:>12} {:>12} {:>10}  digest",
                "kernel", "size", "ws_bytes", "flops/pass", "pred GF/s"
            );
            for row in rows {
                let get_u = |k: &str| match row.get(k) {
                    Some(Json::UInt(n)) => *n,
                    _ => 0,
                };
                let pred = match row.get("predicted_gflops") {
                    Some(Json::Num(x)) => *x,
                    _ => f64::NAN,
                };
                let name = match row.get("kernel") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                let digest = match row.get("digest") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                println!(
                    "  {:<16} {:>9} {:>12} {:>12} {:>10.3}  {}",
                    name,
                    get_u("size"),
                    get_u("working_set_bytes"),
                    get_u("flops_per_pass"),
                    pred,
                    digest,
                );
            }
        }
        if let Json::Obj(fields) = &mut report {
            fields.push(("kernel_roofline".into(), section));
        }
    }

    if database {
        let section = columbia_bench::database::database_storm_section();
        println!();
        println!("database-server storms (deterministic: counters, response digests):");
        for storm in ["cold", "hot"] {
            let stat = |k: &str| match section
                .get(storm)
                .and_then(|s| s.get("stats"))
                .and_then(|s| s.get(k))
            {
                Some(Json::UInt(n)) => *n,
                _ => 0,
            };
            let digest = match section.get(storm).and_then(|s| s.get("digest")) {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            println!(
                "  {storm:<5}: {:>6} queries, {:>6} cache hits, {:>6} dedup hits, digest {digest}",
                stat("queries"),
                stat("cache_hits"),
                stat("dedup_hits"),
            );
        }
        if let Some(Json::Arr(rounds)) = section.get("refinement").and_then(|r| r.get("rounds")) {
            println!(
                "  refinement loop: {} round(s) to a hole-free table",
                rounds.len()
            );
        }
        if let Json::Obj(fields) = &mut report {
            fields.push(("database_storm".into(), section));
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, report.render_pretty()).expect("write report");
        println!("wrote {path}");
    }
}
