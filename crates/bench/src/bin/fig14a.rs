//! Figure 14(a): NSU3D multigrid convergence with 4, 5 and 6 levels
//! (W-cycle) on the benchmark wing mesh.
//!
//! The paper runs the 72M-point DPW mesh at Mach 0.75 / Re 3e6 and finds
//! 5- and 6-level multigrid "adequately converged in approximately 800
//! multigrid cycles, while the four-level multigrid run suffers from slower
//! convergence" (and single-grid would need hundreds of thousands of
//! iterations). At the reproduction's mesh scale the same ordering holds at
//! proportionally fewer cycles; pass `--points N` to grow the mesh.

use columbia_bench::header;
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::{CycleParams, CycleType};
use columbia_rans::{RansSolver, SolverParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let points = args
        .iter()
        .position(|a| a == "--points")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(24_000usize);
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(60usize);
    let v_cycle = args.iter().any(|a| a == "--cycle-v");

    header(
        "Figure 14(a)",
        "NSU3D multigrid convergence, 4/5/6 levels (W-cycle)",
    );
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(points)
    });
    println!(
        "mesh: {} points, {} edges ({} unknowns)",
        mesh.nvertices(),
        mesh.nedges(),
        6 * mesh.nvertices()
    );
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    let cp = CycleParams {
        cycle: if v_cycle { CycleType::V } else { CycleType::W },
        ..Default::default()
    };

    let mut histories = Vec::new();
    for nlevels in [1usize, 4, 5, 6] {
        let mut solver = RansSolver::new(mesh.clone(), params, nlevels);
        let h = solver.solve(&cp, 1e-13, cycles);
        println!(
            "{} level(s): sizes {:?}, {:.2} orders in {} cycles (mean factor {:.3})",
            nlevels,
            solver.level_sizes(),
            h.orders_reduced(),
            h.cycles(),
            h.mean_reduction_factor()
        );
        histories.push((nlevels, h));
    }

    println!("\nresidual history (RMS, every 5 cycles):");
    print!("{:>8}", "cycle");
    for (n, _) in &histories {
        print!("{:>14}", format!("{n}-level"));
    }
    println!();
    let len = histories
        .iter()
        .map(|(_, h)| h.residuals.len())
        .max()
        .unwrap();
    for c in (0..len).step_by(5) {
        print!("{c:>8}");
        for (_, h) in &histories {
            match h.residuals.get(c) {
                Some(r) => print!("{r:>14.3e}"),
                None => print!("{:>14}", "-"),
            }
        }
        println!();
    }
    println!(
        "\npaper shape: 5/6-level converge fastest and nearly identically;\n\
         4-level lags; single grid is impractically slow. Paper scale:\n\
         ~800 W-cycles to convergence on 72M points."
    );
}
