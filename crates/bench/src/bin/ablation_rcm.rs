//! Ablation: reverse Cuthill-McKee cache reordering (paper §III: "for
//! cache-based scalar processors ... the grid data is reordered for cache
//! locality using a reverse Cuthill-McKee type algorithm").
//!
//! Measures real smoothing-sweep wall time on the same wing mesh under a
//! scrambled numbering vs the RCM numbering, plus the adjacency bandwidth
//! that drives the difference.

use columbia_bench::header;
use columbia_mesh::rcm::{bandwidth, reverse_cuthill_mckee};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_rans::{RansLevel, SolverParams};
use columbia_rt::Pcg32;

fn time_sweeps(mesh: columbia_mesh::UnstructuredMesh, sweeps: usize) -> f64 {
    let mut lvl = RansLevel::new(
        mesh,
        SolverParams {
            mach: 0.5,
            ..Default::default()
        },
    );
    lvl.apply_bcs();
    lvl.smooth_sweep(); // warm up
    let t0 = std::time::Instant::now();
    for _ in 0..sweeps {
        lvl.smooth_sweep();
    }
    t0.elapsed().as_secs_f64() / sweeps as f64
}

fn main() {
    header("Ablation", "reverse Cuthill-McKee cache reordering");
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(60_000)
    });
    let n = mesh.nvertices();
    let graph = mesh.dual_graph();

    // Scrambled numbering (worst case for cache locality).
    let mut scramble: Vec<u32> = (0..n as u32).collect();
    Pcg32::seed_from_u64(7).shuffle(&mut scramble);
    let scrambled = mesh.permute(&scramble);

    // RCM numbering recovered from the scrambled mesh.
    let rcm = reverse_cuthill_mckee(&scrambled.dual_graph());
    let reordered = scrambled.permute(&rcm);

    let ident: Vec<u32> = (0..n as u32).collect();
    println!(
        "mesh: {} points; bandwidth natural {} / scrambled {} / RCM {}",
        n,
        bandwidth(&graph, &ident),
        bandwidth(&scrambled.dual_graph(), &ident),
        bandwidth(&reordered.dual_graph(), &ident),
    );
    let t_scr = time_sweeps(scrambled, 5);
    let t_rcm = time_sweeps(reordered, 5);
    println!(
        "smoothing sweep: scrambled {:.1} ms, RCM {:.1} ms  ({:.2}x speedup)",
        t_scr * 1e3,
        t_rcm * 1e3,
        t_scr / t_rcm
    );
    println!(
        "\nexpected: RCM restores near-natural adjacency bandwidth. The sweep\n\
         speedup is modest on modern CPUs whose caches dwarf the Itanium2's\n\
         (the paper's motivation); grow the mesh well past cache size to see\n\
         the locality effect directly."
    );
}
