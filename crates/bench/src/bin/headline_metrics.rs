//! All in-text headline metrics of the paper, paper-vs-model side by side.
//!
//! These are the evaluation numbers stated in prose rather than plotted:
//! cycle times, TFLOP/s rates, speedups, the InfiniBand rank limit, the
//! coarsening ratio, mesh-generation rate, and the 10^9-point projection.

use columbia_bench::{cart3d_profile, header, nsu3d_profile, use_measured};
use columbia_machine::{ib_rank_limit, simulate_cycle, Fabric, MachineConfig, RunConfig};

fn row(name: &str, paper: &str, ours: String) {
    println!("{name:<52}{paper:>14}{ours:>14}");
}

fn main() {
    header("Headline metrics", "paper text values vs model/measurement");
    let m = MachineConfig::columbia_vortex();
    let p6 = nsu3d_profile(use_measured());
    let c4 = cart3d_profile(use_measured());

    println!("{:<52}{:>14}{:>14}", "metric", "paper", "this repo");
    println!("{}", "-".repeat(80));

    let nl = |p: &columbia_machine::CycleProfile, n: usize| {
        simulate_cycle(p, &m, &RunConfig::mpi(n, Fabric::NumaLink4)).unwrap()
    };

    // NSU3D cycle times.
    let b128 = nl(&p6, 128);
    let b2008 = nl(&p6, 2008);
    row(
        "NSU3D 6-level cycle @128 CPUs (s)",
        "31.3",
        format!("{:.1}", b128.seconds),
    );
    row(
        "NSU3D 6-level cycle @2008 CPUs (s)",
        "1.95",
        format!("{:.2}", b2008.seconds),
    );
    row(
        "NSU3D 6-level speedup @2008 (ideal 128 base)",
        "2044",
        format!("{:.0}", 128.0 * b128.seconds / b2008.seconds),
    );
    let sg = p6.truncated(1, true);
    let s128 = nl(&sg, 128);
    let s2008 = nl(&sg, 2008);
    row(
        "NSU3D single-grid speedup @2008",
        "2395",
        format!("{:.0}", 128.0 * s128.seconds / s2008.seconds),
    );
    let p4 = p6.truncated(4, true);
    let f128 = nl(&p4, 128);
    let f2008 = nl(&p4, 2008);
    row(
        "NSU3D 4-level speedup @2008",
        "2250",
        format!("{:.0}", 128.0 * f128.seconds / f2008.seconds),
    );
    row(
        "NSU3D single-grid rate @2008 (TFLOP/s)",
        "3.4",
        format!("{:.2}", s2008.flops_per_second() / 1e12),
    );
    row(
        "NSU3D 4-level rate @2008 (TFLOP/s)",
        "3.1",
        format!("{:.2}", f2008.flops_per_second() / 1e12),
    );
    let p5 = p6.truncated(5, true);
    row(
        "NSU3D 5-level rate @2008 (TFLOP/s)",
        "2.95",
        format!("{:.2}", nl(&p5, 2008).flops_per_second() / 1e12),
    );
    row(
        "NSU3D 6-level rate @2008 (TFLOP/s)",
        "2.8",
        format!("{:.2}", b2008.flops_per_second() / 1e12),
    );
    // 30-minute solution claim: 800 cycles at 1.95 s.
    row(
        "NSU3D solution time @2008, 800 cycles (min)",
        "<30",
        format!("{:.0}", 800.0 * b2008.seconds / 60.0),
    );

    // Cart3D.
    let c496 = nl(&c4, 496);
    let c2016 = nl(&c4, 2016);
    row(
        "Cart3D rate @496 CPUs, 1 node (TFLOP/s)",
        "~0.75",
        format!("{:.2}", c496.flops_per_second() / 1e12),
    );
    row(
        "Cart3D 4-level MG rate @2016 (TFLOP/s)",
        ">2.4",
        format!("{:.2}", c2016.flops_per_second() / 1e12),
    );
    let c32 = nl(&c4, 32);
    row(
        "Cart3D 4-level MG speedup @2016",
        "~1585",
        format!("{:.0}", 32.0 * c32.seconds / c2016.seconds),
    );
    let csg = c4.truncated(1, true);
    row(
        "Cart3D single-grid speedup @2016",
        "~1900",
        format!(
            "{:.0}",
            32.0 * nl(&csg, 32).seconds / nl(&csg, 2016).seconds
        ),
    );

    // Hardware laws.
    row(
        "InfiniBand MPI rank limit, 4 nodes",
        "1524",
        format!("{}", ib_rank_limit(4)),
    );
    row(
        "Hybrid efficiency, 2 OMP threads (%)",
        "98.4",
        format!("{:.1}", m.omp_efficiency(2) * 100.0),
    );
    row(
        "Hybrid efficiency, 4 OMP threads (%)",
        "87.2",
        format!("{:.1}", m.omp_efficiency(4) * 100.0),
    );

    // 1e9-point projection (paper: 4-5 hours on 2008 CPUs).
    let mut big = p6.clone();
    let scale = 1.0e9 / big.levels[0].points;
    for l in big.levels.iter_mut() {
        l.points *= scale;
    }
    for ig in big.intergrid.iter_mut() {
        ig.fine_points *= scale;
    }
    let bb = nl(&big, 2008);
    row(
        "1e9-point case @2008 CPUs, 800 cycles (h)",
        "4-5",
        format!("{:.1}", 800.0 * bb.seconds / 3600.0),
    );

    println!(
        "\nmesh-generation rate (paper: 3-5M cells/min on Itanium2) and the\n\
         agglomeration/SFC coarsening ratios (paper: >7) are measured live by\n\
         the `sslv_cutcell` example and the cartesian/mesh crate tests."
    );
}
