//! Ablation: line-implicit vs point-implicit smoothing on stretched meshes
//! (paper §III: line solvers remove the stiffness of high-aspect-ratio
//! boundary-layer cells; convergence becomes insensitive to stretching).
//!
//! Runs the same wing case with implicit lines enabled (threshold 10) and
//! disabled (threshold infinite => every vertex point-implicit) at two
//! wall-normal stretching strengths.

use columbia_bench::header;
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::CycleParams;
use columbia_rans::{RansSolver, SolverParams};

fn main() {
    header("Ablation", "line-implicit vs point-implicit smoothing");
    for wall_spacing in [1e-3, 1e-5] {
        let mesh = wing_mesh(&WingMeshSpec {
            jitter: 0.0,
            wall_spacing,
            ..WingMeshSpec::with_target_points(8_000)
        });
        for (name, threshold) in [("line-implicit", 10.0), ("point-implicit", f64::INFINITY)] {
            let params = SolverParams {
                mach: 0.5,
                line_threshold: threshold,
                ..Default::default()
            };
            let mut s = RansSolver::new(mesh.clone(), params, 4);
            let coverage = s.levels[0].line_coverage();
            let h = s.solve(&CycleParams::default(), 1e-12, 40);
            println!(
                "wall spacing {wall_spacing:>8.0e}  {name:<16} line coverage {:>5.1}%  {:.2} orders in {} cycles",
                coverage * 100.0,
                h.orders_reduced(),
                h.cycles()
            );
        }
    }
    println!("\nexpected: line-implicit converges at least as fast, with the gap\nwidening as the wall spacing (and hence cell anisotropy) shrinks.");
}
