//! Database-server storm benchmark, committed as `BENCH_database.json`.
//!
//! Usage:
//!   bench_database [--json PATH] [--stable]
//!
//! Two sections:
//!
//! * **deterministic** — seeded cold/hot query storms on a synthetic
//!   filled table plus the closed refinement loop on an injected-hole
//!   table: service counters, FNV response digests, and the proof that
//!   the refined table answers bit-identically to a never-holed one.
//!   `--stable` emits only this section, so a double run under `--stable`
//!   must be byte-identical (the CI smoke check).
//! * **measured** — wall-clock throughput of the same storms: uncached
//!   batched `AeroDatabase::lookup` as the baseline, the served cold
//!   storm, and the served hot storm (cache + dedup), with the
//!   hot-over-uncached speedup the server exists to deliver. The run
//!   aborts if that speedup falls under 3x (the committed report shows
//!   >= 5x; the floor leaves headroom for loaded CI machines).

use columbia_bench::database::{
    cold_queries, database_storm_section, hot_queries, storm_policy, synthetic_entries, BATCH_LEN,
    STORM_SEED,
};
use columbia_core::{AeroDatabase, DatabaseServer, Fallback, Response};
use columbia_rt::Json;
use std::time::Instant;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 7;
/// Queries per measured storm.
const MEASURED_QUERIES: usize = 256 * BATCH_LEN;

fn min_of(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut stable = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json requires a path")),
            "--stable" => stable = true,
            other => panic!("unknown argument {other}"),
        }
    }

    columbia_bench::header(
        "database storm",
        "batched interpolation service: cache, dedup, quarantine refinement",
    );

    let deterministic = database_storm_section();
    let digest = |storm: &str| match deterministic.get(storm).and_then(|s| s.get("digest")) {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    };
    println!("deterministic storms (seed {STORM_SEED:#x}):");
    println!("  cold digest {}", digest("cold"));
    println!("  hot  digest {}", digest("hot"));
    println!("  refinement loop converged: holed table answers == clean table");

    let mut root = Json::obj([
        ("bench", Json::Str("database".into())),
        ("schema", Json::Str("columbia-bench-database/1".into())),
        ("deterministic", deterministic),
    ]);

    if !stable {
        let db = AeroDatabase::from_entries(&synthetic_entries()).expect("clean synthetic fill");
        let cold = cold_queries(MEASURED_QUERIES, STORM_SEED);
        let hot = hot_queries(MEASURED_QUERIES, STORM_SEED);

        // Baseline: uncached batched lookups — the same hot stream, the
        // same materialized per-batch response vectors, but every query
        // pays the full trilinear lookup against the table.
        let mut sink = 0usize;
        let uncached_s = min_of(|| {
            let t = Instant::now();
            for chunk in hot.chunks(BATCH_LEN) {
                let batch: Vec<Result<Response, _>> = chunk
                    .iter()
                    .map(|q| {
                        db.lookup_checked(q.deflection, q.mach, q.alpha)
                            .map(|(force, moment)| Response {
                                force,
                                moment,
                                degraded: false,
                            })
                    })
                    .collect();
                sink += batch.len();
            }
            t.elapsed().as_secs_f64()
        });

        // Served storms (server rebuilt per rep: cold cache every time).
        let mut served = |queries: &[columbia_core::Query]| {
            let mut server = DatabaseServer::new(db.clone(), &storm_policy(Fallback::Strict));
            let t = Instant::now();
            for chunk in queries.chunks(BATCH_LEN) {
                sink += server.serve_batch(chunk).len();
            }
            t.elapsed().as_secs_f64()
        };
        let cold_s = min_of(|| served(&cold));
        let hot_s = min_of(|| served(&hot));
        assert_eq!(sink, (2 * REPS + REPS) * MEASURED_QUERIES);

        let nq = MEASURED_QUERIES as f64;
        let speedup = uncached_s / hot_s;
        println!();
        println!(
            "measured ({MEASURED_QUERIES} queries, min of {REPS} reps, {BATCH_LEN}-query batches):"
        );
        println!(
            "  uncached lookup : {:>8.1} ns/query  {:>7.2} Mq/s",
            1e9 * uncached_s / nq,
            nq / uncached_s / 1e6
        );
        println!(
            "  served cold     : {:>8.1} ns/query  {:>7.2} Mq/s",
            1e9 * cold_s / nq,
            nq / cold_s / 1e6
        );
        println!(
            "  served hot      : {:>8.1} ns/query  {:>7.2} Mq/s",
            1e9 * hot_s / nq,
            nq / hot_s / 1e6
        );
        println!("  hot-over-uncached speedup: {speedup:.2}x");
        assert!(
            speedup >= 3.0,
            "hot-cache speedup {speedup:.2}x under the 3x floor"
        );

        root.set(
            "measured",
            Json::obj([
                ("queries", Json::UInt(MEASURED_QUERIES as u64)),
                ("reps", Json::UInt(REPS as u64)),
                ("uncached_s", Json::Num(uncached_s)),
                ("cold_s", Json::Num(cold_s)),
                ("hot_s", Json::Num(hot_s)),
                ("uncached_mqps", Json::Num(nq / uncached_s / 1e6)),
                ("cold_mqps", Json::Num(nq / cold_s / 1e6)),
                ("hot_mqps", Json::Num(nq / hot_s / 1e6)),
                ("hot_speedup", Json::Num(speedup)),
            ]),
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, root.render_pretty()).expect("write bench json");
        println!("wrote {path}");
    }
}
