//! Shared infrastructure for the figure-regeneration binaries.
//!
//! Each `fig*` binary regenerates one figure of the paper's evaluation
//! section: it prints the same series the figure plots, a `paper:` row of
//! the published values where the paper states them, and (where relevant)
//! the shape checks EXPERIMENTS.md tracks.
//!
//! Workload profiles come in two flavours selected on the command line:
//!
//! * **paper** (default) — the 72M-point NSU3D and 25M-cell Cart3D
//!   workloads with the paper's published level sizes and calibrated
//!   per-point costs;
//! * **measured** (`--measured`) — everything re-derived from live runs of
//!   the real solvers at laptop scale: software FLOP counts, fitted
//!   ghost-surface laws, measured inter-grid locality, then rescaled to
//!   paper size.

pub mod database;
pub mod kernels;
pub mod report;

use columbia_machine::{paper_cart3d_25m, paper_nsu3d_72m, CycleProfile};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::CycleParams;
use columbia_rans::{RansSolver, SolverParams};

/// Parse the common `--measured` flag.
pub fn use_measured() -> bool {
    std::env::args().any(|a| a == "--measured")
}

/// The NSU3D-style workload profile.
pub fn nsu3d_profile(measured: bool) -> CycleProfile {
    if !measured {
        return paper_nsu3d_72m();
    }
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(20_000)
    });
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    let mut solver = RansSolver::new(mesh, params, 6);
    // Settle the state so the FLOP measurement reflects working conditions.
    solver.solve(&CycleParams::default(), 0.0, 3);
    columbia_rans::measure_profile(
        &mut solver,
        &CycleParams::default(),
        &[8, 16, 32, 64],
        16,
        72.0e6,
        "NSU3D 72M-pt (measured, rescaled)",
        &mut columbia_comm::ExecContext::default(),
    )
}

/// The Cart3D-style workload profile.
pub fn cart3d_profile(measured: bool) -> CycleProfile {
    if !measured {
        return paper_cart3d_25m();
    }
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, TriMesh};
    use columbia_euler::{EulerParams, EulerSolver};
    use columbia_sfc::CurveKind;
    let prof: Vec<(f64, f64)> = (0..=14)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 14.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = columbia_cartesian::Geometry::new(&[TriMesh::body_of_revolution(&prof, 16)]);
    let config = CutCellConfig {
        min_level: 4,
        max_level: 6,
        origin: columbia_mesh::Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let mut solver = EulerSolver::new(mesh, EulerParams::default());
    solver.solve(&CycleParams::default(), 0.0, 2);
    columbia_euler::measure_profile(
        &mut solver,
        &CycleParams::default(),
        &[8, 16, 32, 64],
        16,
        25.0e6,
        "Cart3D 25M-cell (measured, rescaled)",
    )
}

/// Print the standard NUMAlink-vs-InfiniBand x 1-2-OMP-threads speedup
/// table for one multigrid truncation of a profile (the common layout of
/// Figures 16, 17 and 18).
pub fn fabric_comparison_table(profile: &CycleProfile, cpu_counts: &[usize]) {
    use columbia_core::PerformanceStudy;
    use columbia_machine::{Fabric, RunConfig};
    let study = PerformanceStudy::new(profile.clone(), cpu_counts);
    let rows = vec![
        study.series("NUMAlink: 1 OMP thread", |n| {
            RunConfig::mpi(n, Fabric::NumaLink4)
        }),
        study.series("NUMAlink: 2 OMP threads", |n| {
            RunConfig::hybrid(n, Fabric::NumaLink4, 2)
        }),
        study.series("InfiniBand: 1 OMP thread", |n| {
            RunConfig::mpi(n, Fabric::InfiniBand)
        }),
        study.series("InfiniBand: 2 OMP threads", |n| {
            RunConfig::hybrid(n, Fabric::InfiniBand, 2)
        }),
    ];
    print!("{}", PerformanceStudy::format_table(&rows, cpu_counts));
}

/// Print a standard figure header.
pub fn header(fig: &str, what: &str) {
    println!("==========================================================================");
    println!("{fig} — {what}");
    println!("==========================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_profile_flavours_validate() {
        nsu3d_profile(false).validate().unwrap();
        cart3d_profile(false).validate().unwrap();
    }
}
