//! Deterministic scaling reports: the paper's per-level breakdown tables
//! as machine-checkable JSON.
//!
//! Three sections, mirroring how the paper argues (Tables 3-5, Figures
//! 16-19):
//!
//! * **model** — [`simulate_cycle`] per-level compute/comm breakdowns over
//!   the requested CPU counts; the coarse-grid communication wall shows up
//!   as a comm fraction that grows monotonically with CPU count;
//! * **fabric** — NUMAlink vs InfiniBand at 2 OpenMP threads per rank
//!   (the configuration that respects the IB rank limit);
//! * **measured** — counters from real traced runs of the parallel RANS
//!   solver: per-level message attribution from [`RankTrace`] ledgers and
//!   chaos (fault-injection) overhead against the clean control arm.
//!
//! Determinism contract: every number in the report derives from either a
//! pure machine-model function or a monotone event counter (plus integer
//! ratios thereof), so two runs with the same seed render *byte-identical*
//! JSON. This is asserted by `tests/trace_report.rs`.

use columbia_comm::workload::HaloWorkload;
use columbia_comm::{flows_from_traces, ExecContext, Executor, FaultConfig, FaultPlan, RankTrace};
use columbia_machine::{
    analytic_makespan, makespan, simulate, simulate_cycle, Arbiter, CycleProfile, Fabric,
    MachineConfig, RunConfig, Topology,
};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::CycleParams;
use columbia_rans::parallel::run_parallel_smoothing;
use columbia_rans::{ParallelMg, SolverParams};
use columbia_rt::trace::ClockMode;
use columbia_rt::Json;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parameters of the measured (traced-runtime) section. Small by default so
/// the report regenerates in seconds on a laptop.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredSpec {
    /// Target points of the wing mesh the traced runs use.
    pub points: usize,
    /// Ranks in the traced runs.
    pub nparts: usize,
    /// Multigrid levels in the traced solve.
    pub nlevels: usize,
    /// W-cycles of the traced solve.
    pub cycles: usize,
    /// Smoothing sweeps of the chaos comparison runs.
    pub sweeps: usize,
    /// Fault-plan seed of the chaos arm.
    pub seed: u64,
}

impl Default for MeasuredSpec {
    fn default() -> Self {
        MeasuredSpec {
            points: 2500,
            nparts: 4,
            nlevels: 3,
            cycles: 2,
            sweeps: 3,
            seed: 42,
        }
    }
}

fn solver_params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

fn report_mesh(points: usize) -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(points)
    })
}

/// Per-level compute/comm breakdown of `profile` on `machine` across
/// `cpu_counts` (pure-MPI NUMAlink runs — the paper's Tables 3-5 layout).
pub fn model_scaling_section(
    profile: &CycleProfile,
    machine: &MachineConfig,
    cpu_counts: &[usize],
) -> Json {
    let mut rows = Vec::new();
    for &n in cpu_counts {
        let run = RunConfig::mpi(n, Fabric::NumaLink4);
        match simulate_cycle(profile, machine, &run) {
            Ok(b) => {
                let levels = Json::arr(b.per_level.iter().enumerate().map(|(l, &(c, m))| {
                    Json::obj([
                        ("level", Json::UInt(l as u64)),
                        ("compute_s", Json::Num(c)),
                        ("comm_s", Json::Num(m)),
                        ("comm_fraction", Json::Num(m / (c + m))),
                    ])
                }));
                let (cc, cm) = *b.per_level.last().expect("profile has levels");
                rows.push(Json::obj([
                    ("ncpus", Json::UInt(n as u64)),
                    ("seconds", Json::Num(b.seconds)),
                    ("compute_s", Json::Num(b.compute_seconds)),
                    ("comm_s", Json::Num(b.comm_seconds)),
                    ("intergrid_s", Json::Num(b.intergrid_seconds)),
                    (
                        "comm_fraction",
                        Json::Num(
                            (b.comm_seconds + b.intergrid_seconds)
                                / (b.compute_seconds + b.comm_seconds + b.intergrid_seconds),
                        ),
                    ),
                    ("coarse_comm_fraction", Json::Num(cm / (cc + cm))),
                    ("levels", levels),
                ]));
            }
            Err(e) => rows.push(Json::obj([
                ("ncpus", Json::UInt(n as u64)),
                ("error", Json::Str(e.to_string())),
            ])),
        }
    }
    Json::arr(rows)
}

/// NUMAlink-vs-InfiniBand cycle times at 2 OpenMP threads per rank.
pub fn fabric_section(
    profile: &CycleProfile,
    machine: &MachineConfig,
    cpu_counts: &[usize],
) -> Json {
    let price = |n: usize, fabric: Fabric| match simulate_cycle(
        profile,
        machine,
        &RunConfig::hybrid(n, fabric, 2),
    ) {
        Ok(b) => Json::Num(b.seconds),
        Err(_) => Json::Null,
    };
    Json::arr(cpu_counts.iter().map(|&n| {
        let nl = price(n, Fabric::NumaLink4);
        let ib = price(n, Fabric::InfiniBand);
        let slowdown = match (&nl, &ib) {
            (Json::Num(a), Json::Num(b)) => Json::Num(b / a),
            _ => Json::Null,
        };
        Json::obj([
            ("ncpus", Json::UInt(n as u64)),
            ("numalink_s", nl),
            ("infiniband_s", ib),
            ("ib_slowdown", slowdown),
        ])
    }))
}

fn aggregate_levels(traces: &[RankTrace]) -> BTreeMap<usize, (u64, u64)> {
    let mut agg: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for t in traces {
        for (&l, s) in &t.per_level {
            let e = agg.entry(l).or_insert((0, 0));
            e.0 += s.total_msgs();
            e.1 += s.total_bytes();
        }
    }
    agg
}

/// Per-level message attribution measured from a real traced multigrid
/// solve: the runtime counterpart of the model's per-level table.
pub fn measured_levels_section(spec: &MeasuredSpec) -> Json {
    let mesh = report_mesh(spec.points);
    let pmg = ParallelMg::new(&mesh, solver_params(), spec.nparts, spec.nlevels);
    let (history, traces) = pmg.solve(
        &CycleParams::default(),
        4.0,
        spec.cycles,
        &mut ExecContext::default(),
    );
    let agg = aggregate_levels(&traces);
    let total_msgs: u64 = agg.values().map(|&(m, _)| m).sum();
    let levels = Json::arr(agg.iter().map(|(&l, &(msgs, bytes))| {
        Json::obj([
            ("level", Json::UInt(l as u64)),
            ("sends", Json::UInt(msgs)),
            ("send_bytes", Json::UInt(bytes)),
            (
                "msg_fraction",
                Json::Num(msgs as f64 / total_msgs.max(1) as f64),
            ),
        ])
    }));
    Json::obj([
        ("ranks", Json::UInt(spec.nparts as u64)),
        ("cycles", Json::UInt(history.residuals.len() as u64)),
        ("total_sends", Json::UInt(total_msgs)),
        ("levels", levels),
    ])
}

/// Chaos overhead: the same smoothing run under a clean plan and under the
/// severe fault configuration, compared counter-by-counter. Every value is
/// a monotone event counter from the deterministic fault schedule, so the
/// section is byte-stable across runs with the same seed.
pub fn chaos_section(spec: &MeasuredSpec) -> Json {
    let mesh = report_mesh(spec.points);
    let arm = |plan: Option<Arc<FaultPlan>>| {
        let mut ctx = ExecContext::default().with_faults(plan);
        let (_, _, traces) =
            run_parallel_smoothing(&mesh, solver_params(), spec.nparts, spec.sweeps, &mut ctx);
        let mut total = columbia_comm::CommStats::default();
        for t in &traces {
            total.merge(&t.stats);
        }
        total
    };
    let clean = arm(None);
    let chaotic = arm(Some(Arc::new(FaultPlan::new(
        spec.seed,
        spec.nparts,
        FaultConfig::severe(),
    ))));
    let counters = |s: &columbia_comm::CommStats| {
        Json::obj(
            s.counter_pairs()
                .into_iter()
                .map(|(k, v)| (k, Json::UInt(v))),
        )
    };
    let f = chaotic.faults();
    let extra = f.retries + f.dup_sent;
    Json::obj([
        ("seed", Json::UInt(spec.seed)),
        ("clean", counters(&clean)),
        ("chaotic", counters(&chaotic)),
        ("extra_wire_messages", Json::UInt(extra)),
        (
            "wire_message_overhead",
            Json::Num(extra as f64 / clean.total_msgs().max(1) as f64),
        ),
    ])
}

/// Rank counts of the discrete-event fabric section.
pub const FABRIC_RANK_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Discrete-event fabric comparison over real traced traffic.
///
/// Every rank count runs the synthetic multigrid halo workload on the
/// event executor, replays its teardown ledgers as a packet burst
/// ([`flows_from_traces`]) through the contended Columbia topology of
/// each fabric, and compares the emergent makespan against the analytic
/// closed form ([`analytic_makespan`]). The InfiniBand degradation the
/// paper's fig15/fig21 measure shows up as `ib_slowdown` exceeding
/// `analytic_ib_slowdown` from 8 ranks on: queueing on the shared
/// HCA-pool uplinks, not a fitted curve. Every number derives from the
/// deterministic simulator over deterministic traces, so the section is
/// byte-stable across runs.
pub fn fabric_contention_section(rank_counts: &[usize]) -> Json {
    let spec = HaloWorkload {
        points_per_rank: 64,
        levels: 3,
        cycles: 2,
    };
    let ctx = ExecContext::default().with_executor(Executor::Events);
    Json::arr(rank_counts.iter().map(|&n| {
        let report = spec.run(n, &ctx);
        let flows = flows_from_traces(&report.traces);
        let nodes = if n >= 2 { 2 } else { 1 };
        let price = |fabric: Fabric| {
            let topo = Topology::columbia(fabric, n, nodes);
            let contended = makespan(&simulate(&topo, Arbiter::RoundRobin, &flows));
            let analytic = analytic_makespan(fabric, nodes, &flows);
            let row = Json::obj([
                ("contended_s", Json::Num(contended)),
                ("analytic_s", Json::Num(analytic)),
                ("queueing_factor", Json::Num(contended / analytic)),
            ]);
            (contended, analytic, row)
        };
        let (nl_c, nl_a, nl) = price(Fabric::NumaLink4);
        let (ib_c, ib_a, ib) = price(Fabric::InfiniBand);
        let (_, _, ge) = price(Fabric::TenGigE);
        let ib_slowdown = ib_c / nl_c;
        let analytic_ib_slowdown = ib_a / nl_a;
        let topo_ib = Topology::columbia(Fabric::InfiniBand, n, nodes);
        let arb_ms = |arb: Arbiter| Json::Num(makespan(&simulate(&topo_ib, arb, &flows)));
        Json::obj([
            ("ranks", Json::UInt(n as u64)),
            ("nodes", Json::UInt(nodes as u64)),
            ("packets", Json::UInt(flows.len() as u64)),
            (
                "bytes",
                Json::UInt(flows.iter().map(|p| p.bytes).sum::<u64>()),
            ),
            ("numalink", nl),
            ("infiniband", ib),
            ("tengige", ge),
            ("ib_slowdown", Json::Num(ib_slowdown)),
            ("analytic_ib_slowdown", Json::Num(analytic_ib_slowdown)),
            (
                "emergent_exceeds_analytic",
                Json::Bool(ib_slowdown > analytic_ib_slowdown),
            ),
            (
                "ib_arbiters",
                Json::obj([
                    ("round_robin", Json::Num(ib_c)),
                    ("priority", arb_ms(Arbiter::Priority)),
                    ("fair_share", arb_ms(Arbiter::FairShare)),
                ]),
            ),
        ])
    }))
}

/// World sizes of the paper-scale section: the fig14–fig22 rank counts
/// the event executor hosts as *real rank programs* on one machine.
pub const PAPER_WORLD_SIZES: [usize; 3] = [512, 1024, 2016];

/// Real event-executor runs at paper scale — not the machine model:
/// every world runs the synthetic multigrid halo workload through the
/// production comm runtime (packed exchanges, buffer pool, collectives,
/// barriers, per-level attribution) with one cooperative task per rank.
/// Residual bits are recorded verbatim, so the section doubles as a
/// cross-run (and cross-executor) bit-identity pin inside the report
/// artifact itself.
pub fn paper_scale_section(sizes: &[usize]) -> Json {
    let spec = HaloWorkload::paper_default();
    let ctx = ExecContext::default().with_executor(Executor::Events);
    Json::arr(sizes.iter().map(|&n| {
        let report = spec.run(n, &ctx);
        let agg = aggregate_levels(&report.traces);
        let levels = Json::arr(agg.iter().map(|(&l, &(msgs, bytes))| {
            Json::obj([
                ("level", Json::UInt(l as u64)),
                ("sends", Json::UInt(msgs)),
                ("send_bytes", Json::UInt(bytes)),
            ])
        }));
        Json::obj([
            ("ranks", Json::UInt(n as u64)),
            ("executor", Json::Str("events".into())),
            ("points_per_rank", Json::UInt(spec.points_per_rank as u64)),
            ("mg_levels", Json::UInt(spec.levels as u64)),
            ("cycles", Json::UInt(spec.cycles as u64)),
            (
                "rms_bits",
                Json::arr(report.rms_history.iter().map(|r| Json::UInt(r.to_bits()))),
            ),
            ("total_bytes", Json::UInt(report.summary.total_bytes)),
            (
                "max_bytes_per_rank",
                Json::UInt(report.summary.max_bytes_per_rank),
            ),
            ("max_degree", Json::UInt(report.summary.max_degree as u64)),
            ("levels", levels),
        ])
    }))
}

/// Assemble the full scaling report.
///
/// `mode` is recorded in the header: [`ClockMode::Logical`] is the
/// byte-reproducible test mode; [`ClockMode::Wall`] marks a report whose
/// traced runs also carried wall-clock spans (not byte-comparable).
/// Deterministic kernel-roofline section: one pass of each SoA/SIMD
/// kernel at each working-set size, reporting software FLOP counts,
/// parity digests (scalar and batch outputs — equal by construction),
/// and the machine model's roofline-predicted sustained GFLOP/s. No
/// wall-clock numbers, so the section is byte-stable across runs; the
/// achieved-rate comparison lives in `bench_kernels`.
pub fn kernel_roofline_section() -> Json {
    use crate::kernels::{self, LINE_LEN, NB};
    use columbia_linalg::{flops, BlockTridiag, TridiagBatch};
    let seed = 0xC01D_B10C;
    let mut rows = Vec::new();
    let mut push = |kernel: &str, size: usize, ws: u64, fl: u64, digest: u64| {
        rows.push(Json::obj([
            ("kernel", Json::Str(kernel.into())),
            ("size", Json::UInt(size as u64)),
            ("working_set_bytes", Json::UInt(ws)),
            ("flops_per_pass", Json::UInt(fl)),
            ("digest", Json::Str(format!("{digest:016x}"))),
            (
                "predicted_gflops",
                Json::Num(kernels::predicted_gflops(ws as f64)),
            ),
        ]));
    };
    for &n in &kernels::POINT_SIZES {
        let set = kernels::point_set(n, seed);
        let mut a = vec![[0.0; NB]; n];
        let mut b = vec![[0.0; NB]; n];
        flops::take();
        kernels::point_lu_scalar(&set, &mut a);
        let fl = flops::take();
        kernels::point_lu_simd(&set, &mut b);
        flops::take();
        assert_eq!(kernels::digest_states(&a), kernels::digest_states(&b));
        push(
            "point_lu6",
            n,
            set.working_set_bytes(),
            fl,
            kernels::digest_states(&a),
        );
    }
    for &nlines in &kernels::LINE_COUNTS {
        let set = kernels::line_set(nlines, seed);
        let mut a = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
        let mut b = vec![vec![[0.0; NB]; LINE_LEN]; nlines];
        let mut sc = BlockTridiag::new();
        let mut bc = TridiagBatch::new();
        flops::take();
        kernels::line_tridiag_scalar(&set, &mut sc, &mut a);
        let fl = flops::take();
        kernels::line_tridiag_simd(&set, &mut bc, &mut b);
        flops::take();
        assert_eq!(kernels::digest_lines(&a), kernels::digest_lines(&b));
        push(
            "line_tridiag6",
            nlines,
            set.working_set_bytes(),
            fl,
            kernels::digest_lines(&a),
        );
    }
    for &n in &kernels::AXPY_SIZES {
        let set = kernels::axpy_set(n, seed);
        let mut a = set.y0.clone();
        let mut b = set.y0.clone();
        flops::take();
        kernels::axpy_scalar(0.37, &set.x, &mut a);
        let fl = flops::take();
        kernels::axpy_simd(0.37, &set.x, &mut b);
        flops::take();
        assert_eq!(kernels::digest_states(&a), kernels::digest_states(&b));
        push(
            "rk_axpy",
            n,
            set.working_set_bytes(),
            fl,
            kernels::digest_states(&a),
        );
    }
    for &target in &kernels::SWEEP_POINTS {
        let mut lvl = kernels::sweep_level(target);
        let n = lvl.mesh.nvertices();
        let ws = kernels::sweep_working_set_bytes(&lvl);
        let fl = kernels::sweep_pass_flops(&mut lvl);
        let digest = kernels::digest_states(&lvl.u.to_aos());
        // Replay the convert-at-boundary baseline from the same reset
        // state: the layouts must land on identical bits.
        kernels::sweep_reset(&mut lvl);
        let mut u_aos = lvl.u.to_aos();
        let mut res_aos = lvl.res.to_aos();
        kernels::sweep_convert_at_boundary(&mut lvl, &mut u_aos, &mut res_aos);
        assert_eq!(digest, kernels::digest_states(&u_aos));
        push("resident_sweep6", n, ws, fl, digest);
    }
    Json::Arr(rows)
}

pub fn scaling_report(
    profile: &CycleProfile,
    machine: &MachineConfig,
    cpu_counts: &[usize],
    spec: &MeasuredSpec,
    mode: ClockMode,
) -> Json {
    Json::obj([
        ("schema", Json::Str("columbia-scaling-report/1".into())),
        ("clock", Json::Str(mode.label().into())),
        ("profile", Json::Str(profile.name.clone())),
        (
            "cpu_counts",
            Json::arr(cpu_counts.iter().map(|&n| Json::UInt(n as u64))),
        ),
        ("model", model_scaling_section(profile, machine, cpu_counts)),
        ("fabric", fabric_section(profile, machine, cpu_counts)),
        ("measured_levels", measured_levels_section(spec)),
        ("chaos", chaos_section(spec)),
    ])
}

/// Render the model section as the paper's per-level breakdown table:
/// one row per CPU count, comm fraction per level plus totals.
pub fn per_level_table(report: &Json) -> String {
    let rows = match report.get("model") {
        Some(Json::Arr(rows)) => rows,
        _ => return String::from("(no model section)\n"),
    };
    let nlev = rows
        .iter()
        .filter_map(|r| match r.get("levels") {
            Some(Json::Arr(ls)) => Some(ls.len()),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!("{:>6}  {:>9}  {:>7}", "CPUs", "cycle(s)", "comm%"));
    for l in 0..nlev {
        out.push_str(&format!("  {:>7}", format!("L{l}%")));
    }
    out.push('\n');
    let pct = |j: Option<&Json>| match j {
        Some(Json::Num(x)) => format!("{:.1}", 100.0 * x),
        _ => String::from("-"),
    };
    for r in rows {
        let ncpus = match r.get("ncpus") {
            Some(Json::UInt(n)) => *n,
            _ => continue,
        };
        if let Some(Json::Str(e)) = r.get("error") {
            out.push_str(&format!("{ncpus:>6}  infeasible: {e}\n"));
            continue;
        }
        let secs = match r.get("seconds") {
            Some(Json::Num(s)) => format!("{s:.3}"),
            _ => String::from("-"),
        };
        out.push_str(&format!(
            "{:>6}  {:>9}  {:>7}",
            ncpus,
            secs,
            pct(r.get("comm_fraction"))
        ));
        if let Some(Json::Arr(levels)) = r.get("levels") {
            for lv in levels {
                out.push_str(&format!("  {:>7}", pct(lv.get("comm_fraction"))));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::{paper_nsu3d_72m, NSU3D_CPU_COUNTS};

    #[test]
    fn coarse_comm_fraction_grows_with_cpu_count() {
        let machine = MachineConfig::columbia_vortex();
        let profile = paper_nsu3d_72m();
        let section = model_scaling_section(&profile, &machine, &NSU3D_CPU_COUNTS);
        let rows = match &section {
            Json::Arr(rows) => rows,
            _ => panic!("not an array"),
        };
        assert_eq!(rows.len(), NSU3D_CPU_COUNTS.len());
        let mut prev = -1.0;
        for r in rows {
            let f = match r.get("coarse_comm_fraction") {
                Some(Json::Num(x)) => *x,
                other => panic!("missing coarse_comm_fraction: {other:?}"),
            };
            assert!(
                f > prev,
                "coarse comm fraction must grow with CPUs: {f} after {prev}"
            );
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        // The coarse-grid wall: at 2008 CPUs the coarsest level is
        // communication-dominated even though the whole cycle is not.
        assert!(prev > 0.5, "coarsest level should be comm-bound: {prev}");
    }

    #[test]
    fn per_level_table_renders_every_cpu_count() {
        let machine = MachineConfig::columbia_vortex();
        let profile = paper_nsu3d_72m();
        let spec = MeasuredSpec {
            points: 900,
            nparts: 2,
            cycles: 1,
            sweeps: 1,
            ..Default::default()
        };
        let report = scaling_report(&profile, &machine, &[128, 2008], &spec, ClockMode::Logical);
        let table = per_level_table(&report);
        assert!(table.contains("128"), "{table}");
        assert!(table.contains("2008"), "{table}");
        assert!(table.contains("L5%"), "{table}");
        // Report header is well-formed.
        assert_eq!(
            report.get("schema").unwrap().render(),
            "\"columbia-scaling-report/1\""
        );
        assert_eq!(report.get("clock").unwrap().render(), "\"logical\"");
    }

    #[test]
    fn paper_scale_section_is_deterministic_and_shaped() {
        // Small world sizes: the section's *shape* and byte-stability are
        // what's pinned here; the real 512/1024/2016 runs happen in CI's
        // scaling-report artifact and the paper_scale test.
        let a = paper_scale_section(&[4, 9]);
        let b = paper_scale_section(&[4, 9]);
        assert_eq!(a.render(), b.render(), "section must be byte-stable");
        let rows = match &a {
            Json::Arr(rows) => rows,
            _ => panic!("not an array"),
        };
        assert_eq!(rows.len(), 2);
        for (row, expect_n) in rows.iter().zip([4u64, 9]) {
            assert_eq!(row.get("ranks"), Some(&Json::UInt(expect_n)));
            assert_eq!(row.get("executor").unwrap().render(), "\"events\"");
            match row.get("rms_bits") {
                Some(Json::Arr(bits)) => assert!(!bits.is_empty()),
                other => panic!("missing rms_bits: {other:?}"),
            }
            match row.get("total_bytes") {
                Some(Json::UInt(n)) => assert!(*n > 0),
                other => panic!("missing total_bytes: {other:?}"),
            }
        }
    }

    #[test]
    fn fabric_contention_section_is_deterministic_and_emergent_at_8_ranks() {
        let a = fabric_contention_section(&[2, 8]);
        let b = fabric_contention_section(&[2, 8]);
        assert_eq!(a.render(), b.render(), "section must be byte-stable");
        let rows = match &a {
            Json::Arr(rows) => rows,
            _ => panic!("not an array"),
        };
        assert_eq!(rows.len(), 2);
        for row in rows {
            let ranks = match row.get("ranks") {
                Some(Json::UInt(n)) => *n,
                other => panic!("missing ranks: {other:?}"),
            };
            // Queueing factors are well-formed. (NUMAlink's can dip just
            // below 1: the contended topology pipelines a source's intra
            // channel and NIC, which the per-source-serialised analytic
            // oracle cannot.)
            let qf = |fabric: &str| match row.get(fabric).and_then(|f| f.get("queueing_factor")) {
                Some(Json::Num(x)) => *x,
                other => panic!("missing {fabric} queueing_factor: {other:?}"),
            };
            for fabric in ["numalink", "infiniband", "tengige"] {
                let f = qf(fabric);
                assert!(
                    f.is_finite() && f > 0.5,
                    "{fabric} queueing factor degenerate at {ranks} ranks: {f}"
                );
            }
            assert!(
                qf("infiniband") >= qf("numalink"),
                "queueing must hit InfiniBand harder than NUMAlink at {ranks} ranks"
            );
            // The acceptance criterion: from 8 ranks on, the IB-vs-NL
            // slowdown must exceed the analytic ratio — the degradation
            // is emergent queueing, not the closed form restated.
            if ranks >= 8 {
                assert_eq!(
                    row.get("emergent_exceeds_analytic"),
                    Some(&Json::Bool(true)),
                    "IB degradation not emergent at {ranks} ranks: {row:?}"
                );
            }
        }
    }

    #[test]
    fn chaos_section_reports_fault_overhead() {
        let spec = MeasuredSpec {
            points: 900,
            nparts: 2,
            sweeps: 2,
            ..Default::default()
        };
        let j = chaos_section(&spec);
        let clean = j.get("clean").unwrap();
        let chaotic = j.get("chaotic").unwrap();
        // The clean arm must be fault-free, the chaotic arm must not be.
        assert!(
            clean.get("fault.retries").is_none()
                || clean.get("fault.retries") == Some(&Json::UInt(0))
        );
        let sends = match chaotic.get("comm.sends") {
            Some(Json::UInt(n)) => *n,
            _ => panic!("missing sends"),
        };
        assert!(sends > 0);
        match j.get("extra_wire_messages") {
            Some(Json::UInt(n)) => assert!(*n > 0, "severe plan should inject faults"),
            other => panic!("missing extra_wire_messages: {other:?}"),
        }
    }
}
