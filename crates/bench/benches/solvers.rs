//! Benchmarks of full solver iterations and mesh generation (the latter
//! measures the cells-per-minute rate the paper quotes as 3-5M
//! cells/minute on a 1.5 GHz Itanium2). Runs on the columbia-rt harness.

use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
use columbia_euler::{EulerLevel, EulerParams, EulerSolver};
use columbia_mesh::{wing_mesh, Vec3, WingMeshSpec};
use columbia_mg::CycleParams;
use columbia_rans::{RansLevel, RansSolver, SolverParams};
use columbia_rt::bench::{black_box, Bench, Throughput};
use columbia_sfc::CurveKind;

fn rans_params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

fn bench_rans(c: &mut Bench) {
    let mut g = c.benchmark_group("rans");
    g.sample_size(10);
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(8_000)
    });
    g.throughput(Throughput::Elements(mesh.nvertices() as u64));
    let mut lvl = RansLevel::new(mesh.clone(), rans_params());
    lvl.apply_bcs();
    g.bench_function("residual_8k", |bench| {
        bench.iter(|| {
            lvl.compute_residual();
            black_box(lvl.res.at(0, 0))
        })
    });
    g.bench_function("smooth_sweep_8k", |bench| {
        bench.iter(|| {
            lvl.smooth_sweep();
            black_box(lvl.u.at(0, 0))
        })
    });
    let mut solver = RansSolver::new(mesh, rans_params(), 4);
    g.bench_function("w_cycle_4lvl_8k", |bench| {
        bench.iter(|| {
            solver.cycle(&CycleParams::default());
            black_box(solver.levels[0].u.at(0, 0))
        })
    });
    g.finish();
}

fn sphere_geom() -> Geometry {
    let prof: Vec<(f64, f64)> = (0..=14)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 14.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    Geometry::new(&[TriMesh::body_of_revolution(&prof, 16)])
}

fn bench_cartesian(c: &mut Bench) {
    let mut g = c.benchmark_group("cartesian");
    g.sample_size(10);
    let geom = sphere_geom();
    let config = CutCellConfig {
        min_level: 4,
        max_level: 6,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    // Mesh generation rate: report cells/second via throughput.
    let tree = build_octree(&geom, &config);
    let ncells = tree.leaves.len() as u64;
    g.throughput(Throughput::Elements(ncells));
    g.bench_function("octree_plus_extract", |bench| {
        bench.iter(|| {
            let tree = build_octree(black_box(&geom), &config);
            black_box(extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1).ncells())
        })
    });
    g.finish();
}

fn bench_euler(c: &mut Bench) {
    let mut g = c.benchmark_group("euler");
    g.sample_size(10);
    let geom = sphere_geom();
    let config = CutCellConfig {
        min_level: 3,
        max_level: 5,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    g.throughput(Throughput::Elements(mesh.ncells() as u64));
    let fs = columbia_euler::freestream5(0.5, 0.0, 0.0);
    let mut lvl = EulerLevel::new(mesh.clone(), fs, 1.5);
    g.bench_function("rk5_step", |bench| {
        bench.iter(|| {
            lvl.rk_step();
            black_box(lvl.u.at(0, 0))
        })
    });
    let mut solver = EulerSolver::new(mesh, EulerParams::default());
    g.bench_function("w_cycle_4lvl", |bench| {
        bench.iter(|| {
            solver.cycle(&CycleParams::default());
            black_box(solver.levels[0].u.at(0, 0))
        })
    });
    g.finish();
}

columbia_rt::bench_main!(bench_rans, bench_cartesian, bench_euler);
