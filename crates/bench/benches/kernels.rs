//! Microbenchmarks of the computational kernels (columbia-rt harness).

use columbia_linalg::{BlockMat, BlockTridiag};
use columbia_mesh::Vec3;
use columbia_partition::{graph::grid_graph, partition_graph, PartitionConfig};
use columbia_rans::state::{flux_jacobian, freestream, rusanov};
use columbia_rt::bench::{black_box, Bench, Throughput};
use columbia_sfc::{hilbert_encode, morton_encode};

fn bench_block_kernels(c: &mut Bench) {
    let mut g = c.benchmark_group("linalg");
    let mut m = BlockMat::<6>::from_fn(|r, c| 0.1 * (r as f64) - 0.2 * (c as f64));
    m.add_diagonal(8.0);
    let b = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
    g.bench_function("lu6_factor_solve", |bench| {
        bench.iter(|| {
            let lu = black_box(&m).lu().unwrap();
            black_box(lu.solve(&b))
        })
    });
    // Block tridiagonal line of 32 points (typical boundary-layer line).
    g.bench_function("block_tridiag_32", |bench| {
        let mut t = BlockTridiag::<6>::new();
        let mut x = vec![[0.0f64; 6]; 32];
        bench.iter(|| {
            t.reset(32);
            for i in 0..32 {
                let mut d = m;
                d.add_diagonal(2.0);
                *t.diag_mut(i) = d;
                if i > 0 {
                    *t.lower_mut(i) = BlockMat::scaled_identity(-0.5);
                }
                if i + 1 < 32 {
                    *t.upper_mut(i) = BlockMat::scaled_identity(-0.5);
                }
                *t.rhs_mut(i) = b;
            }
            t.solve_into(&mut x).unwrap();
            black_box(x[16][0])
        })
    });
    g.finish();
}

fn bench_flux_kernels(c: &mut Bench) {
    let mut g = c.benchmark_group("flux");
    let ul = freestream(0.75, 0.02, 1e-4);
    let mut ur = ul;
    ur[0] = 1.1;
    let s = Vec3::new(0.4, -0.2, 0.1);
    g.throughput(Throughput::Elements(1));
    g.bench_function("rusanov6", |bench| {
        bench.iter(|| black_box(rusanov(black_box(&ul), black_box(&ur), s)))
    });
    g.bench_function("flux_jacobian6", |bench| {
        bench.iter(|| black_box(flux_jacobian(black_box(&ul), s)))
    });
    g.finish();
}

fn bench_sfc(c: &mut Bench) {
    let mut g = c.benchmark_group("sfc");
    g.throughput(Throughput::Elements(1));
    g.bench_function("morton_encode", |bench| {
        bench.iter(|| black_box(morton_encode(black_box(123456), 654321, 111111, 21)))
    });
    g.bench_function("hilbert_encode", |bench| {
        bench.iter(|| black_box(hilbert_encode(black_box(123456), 654321, 111111, 21)))
    });
    g.finish();
}

fn bench_partitioner(c: &mut Bench) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(10);
    let graph = grid_graph(24, 24, 24);
    g.bench_function("kway16_13824v", |bench| {
        bench.iter(|| black_box(partition_graph(&graph, 16, &PartitionConfig::default())))
    });
    g.finish();
}

fn bench_mesh_algorithms(c: &mut Bench) {
    use columbia_mesh::{
        agglomerate, extract_lines, reverse_cuthill_mckee, wing_mesh, WingMeshSpec,
    };
    let mut g = c.benchmark_group("mesh");
    g.sample_size(10);
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(12_000)
    });
    g.bench_function("agglomerate_12k", |bench| {
        bench.iter(|| black_box(agglomerate(black_box(&mesh))))
    });
    g.bench_function("extract_lines_12k", |bench| {
        bench.iter(|| black_box(extract_lines(black_box(&mesh), 10.0)))
    });
    let graph = mesh.dual_graph();
    g.bench_function("rcm_12k", |bench| {
        bench.iter(|| black_box(reverse_cuthill_mckee(black_box(&graph))))
    });
    g.finish();
}

columbia_rt::bench_main!(
    bench_block_kernels,
    bench_flux_kernels,
    bench_sfc,
    bench_partitioner,
    bench_mesh_algorithms
);
