//! Determinism contract of the scaling report: in logical-clock mode two
//! runs with the same seed must render *byte-identical* JSON, and the seed
//! must genuinely steer the chaos arm.

use columbia_bench::report::{chaos_section, scaling_report, MeasuredSpec};
use columbia_machine::{paper_nsu3d_72m, MachineConfig};
use columbia_rt::trace::ClockMode;

fn small_spec() -> MeasuredSpec {
    MeasuredSpec {
        points: 900,
        nparts: 2,
        cycles: 1,
        sweeps: 2,
        ..Default::default()
    }
}

#[test]
fn same_seed_reports_are_byte_identical() {
    let run = || {
        scaling_report(
            &paper_nsu3d_72m(),
            &MachineConfig::columbia_vortex(),
            &[128, 502, 2008],
            &small_spec(),
            ClockMode::Logical,
        )
        .render_pretty()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed scaling reports must be byte-identical");
    // The report carries the sections the paper's tables need.
    assert!(a.contains("\"coarse_comm_fraction\""));
    assert!(a.contains("\"ib_slowdown\""));
    assert!(a.contains("\"measured_levels\""));
    assert!(a.contains("\"chaos\""));
    assert!(a.contains("\"clock\": \"logical\""));
}

#[test]
fn chaos_seed_steers_the_fault_schedule() {
    let a = chaos_section(&small_spec()).render();
    let b = chaos_section(&MeasuredSpec {
        seed: 7,
        ..small_spec()
    })
    .render();
    assert_ne!(a, b, "different fault seeds must change the chaos counters");
    // But re-running either seed reproduces it exactly.
    assert_eq!(a, chaos_section(&small_spec()).render());
}
