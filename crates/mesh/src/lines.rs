//! Implicit-line extraction for the line-implicit smoother.
//!
//! Paper §III: "Using a graph algorithm, the edges of the mesh which connect
//! closely coupled grid points (usually in the normal direction) in boundary
//! layer regions, are grouped together into a set of non-intersecting
//! lines." Coupling is measured as dual-face area over edge length (the
//! coefficient magnitude of the associated discrete operator); lines are
//! grown greedily from the most anisotropic vertices, always following the
//! strongest-coupled unused edge. In isotropic regions the line structure
//! degenerates to single points and the point-implicit scheme is recovered.

use crate::mesh::UnstructuredMesh;

/// A set of non-intersecting implicit lines over a mesh.
#[derive(Clone, Debug)]
pub struct LineSet {
    /// Lines with at least two vertices, in mesh order along the line.
    pub lines: Vec<Vec<u32>>,
    /// For each vertex: index into `lines`, or `u32::MAX` for singletons.
    pub vertex_line: Vec<u32>,
}

impl LineSet {
    /// Number of multi-vertex lines.
    pub fn nlines(&self) -> usize {
        self.lines.len()
    }

    /// Number of vertices covered by multi-vertex lines.
    pub fn covered_vertices(&self) -> usize {
        self.lines.iter().map(|l| l.len()).sum()
    }

    /// A complete vertex cover: the extracted lines plus singleton "lines"
    /// for all remaining vertices. This is the input shape expected by
    /// [`columbia_partition::contract_lines`].
    pub fn covering_lines(&self) -> Vec<Vec<u32>> {
        let mut all = self.lines.clone();
        for (v, &l) in self.vertex_line.iter().enumerate() {
            if l == u32::MAX {
                all.push(vec![v as u32]);
            }
        }
        all
    }

    /// Longest line length (0 if none).
    pub fn max_len(&self) -> usize {
        self.lines.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Vector groups (paper §III): "the lines are sorted based on their
    /// length, and grouped into sets of 64 lines of similar length, over
    /// which vectorization may then take place at each stage in the line
    /// solver algorithm." Returns line indices grouped `group_size` at a
    /// time in descending length order.
    pub fn vector_groups(&self, group_size: usize) -> Vec<Vec<u32>> {
        assert!(group_size > 0);
        let mut order: Vec<u32> = (0..self.lines.len() as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.lines[i as usize].len()));
        order.chunks(group_size).map(|c| c.to_vec()).collect()
    }
}

/// Extract implicit lines from `mesh`.
///
/// * `aniso_threshold` — minimum ratio of strongest to weakest edge coupling
///   at a vertex for it to participate in a line (typical: 10). Values this
///   large only occur in stretched boundary-layer regions.
pub fn extract_lines(mesh: &UnstructuredMesh, aniso_threshold: f64) -> LineSet {
    let n = mesh.nvertices();
    let ve = mesh.vertex_edges();
    // Edge coupling = dual face area / length.
    let coupling: Vec<f64> = mesh
        .edges
        .iter()
        .map(|e| e.normal.norm() / e.length)
        .collect();

    // Per-vertex anisotropy ratio.
    let mut ratio = vec![0.0f64; n];
    for v in 0..n {
        let mut cmax = 0.0f64;
        let mut cmin = f64::INFINITY;
        for r in ve.of(v) {
            let c = coupling[r.edge as usize];
            cmax = cmax.max(c);
            cmin = cmin.min(c);
        }
        ratio[v] = if cmin > 0.0 && cmin.is_finite() {
            cmax / cmin
        } else {
            0.0
        };
    }

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| ratio[b as usize].partial_cmp(&ratio[a as usize]).unwrap());

    let mut vertex_line = vec![u32::MAX; n];
    let mut lines: Vec<Vec<u32>> = Vec::new();

    // Walk from `v` along strongest-coupled unassigned edges.
    let grow = |start: u32, vertex_line: &mut [u32], line_id: u32, ratio: &[f64]| -> Vec<u32> {
        let mut path = Vec::new();
        let mut v = start;
        loop {
            // Strongest edge at v.
            let mut cmax = 0.0f64;
            for r in ve.of(v as usize) {
                cmax = cmax.max(coupling[r.edge as usize]);
            }
            // Best unassigned, eligible continuation.
            let mut best: Option<(u32, f64)> = None;
            for r in ve.of(v as usize) {
                let u = r.other;
                let c = coupling[r.edge as usize];
                if vertex_line[u as usize] == u32::MAX
                    && ratio[u as usize] >= aniso_threshold
                    && c >= 0.5 * cmax
                {
                    match best {
                        Some((_, bc)) if bc >= c => {}
                        _ => best = Some((u, c)),
                    }
                }
            }
            match best {
                Some((u, _)) => {
                    vertex_line[u as usize] = line_id;
                    path.push(u);
                    v = u;
                }
                None => break,
            }
        }
        path
    };

    for &seed in &order {
        let s = seed as usize;
        if vertex_line[s] != u32::MAX || ratio[s] < aniso_threshold {
            continue;
        }
        let line_id = lines.len() as u32;
        vertex_line[s] = line_id;
        // Grow forward then backward from the seed.
        let fwd = grow(seed, &mut vertex_line, line_id, &ratio);
        let bwd = grow(seed, &mut vertex_line, line_id, &ratio);
        let mut line: Vec<u32> = bwd.into_iter().rev().collect();
        line.push(seed);
        line.extend(fwd);
        if line.len() >= 2 {
            lines.push(line);
        } else {
            // Degenerate: revert to singleton.
            vertex_line[s] = u32::MAX;
        }
    }

    LineSet { lines, vertex_line }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{isotropic_box_mesh, wing_mesh, WingMeshSpec};

    #[test]
    fn isotropic_mesh_yields_no_lines() {
        let m = isotropic_box_mesh(6, 6, 6);
        let ls = extract_lines(&m, 10.0);
        assert_eq!(ls.nlines(), 0);
        assert!(ls.vertex_line.iter().all(|&l| l == u32::MAX));
        assert_eq!(ls.covering_lines().len(), m.nvertices());
    }

    #[test]
    fn boundary_layer_grows_wall_normal_lines() {
        let spec = WingMeshSpec {
            jitter: 0.0,
            tet_diagonals: false,
            ..Default::default()
        };
        let m = wing_mesh(&spec);
        let ls = extract_lines(&m, 10.0);
        assert!(ls.nlines() > 0, "no lines found in stretched mesh");
        // Lines should reach through most of the BL block.
        assert!(
            ls.max_len() >= spec.nk_bl - 1,
            "lines too short: {} < {}",
            ls.max_len(),
            spec.nk_bl - 1
        );
        // Every wall vertex should sit in some line.
        let wall_covered = (0..m.nvertices())
            .filter(|&v| m.bc[v] == crate::mesh::BoundaryKind::Wall)
            .filter(|&v| ls.vertex_line[v] != u32::MAX)
            .count();
        let walls = spec.ni * spec.nj;
        assert!(
            wall_covered as f64 > 0.9 * walls as f64,
            "only {wall_covered}/{walls} wall vertices in lines"
        );
    }

    #[test]
    fn lines_are_disjoint_and_consistent() {
        let m = wing_mesh(&WingMeshSpec::default());
        let ls = extract_lines(&m, 10.0);
        let mut seen = vec![false; m.nvertices()];
        for (li, line) in ls.lines.iter().enumerate() {
            assert!(line.len() >= 2);
            for &v in line {
                assert!(!seen[v as usize], "vertex {v} in two lines");
                seen[v as usize] = true;
                assert_eq!(ls.vertex_line[v as usize], li as u32);
            }
        }
    }

    #[test]
    fn lines_follow_mesh_edges() {
        let spec = WingMeshSpec {
            jitter: 0.0,
            ..Default::default()
        };
        let m = wing_mesh(&spec);
        let ls = extract_lines(&m, 10.0);
        // Consecutive line vertices must share a mesh edge.
        use std::collections::HashSet;
        let mut eset = HashSet::new();
        for e in &m.edges {
            eset.insert((e.a.min(e.b), e.a.max(e.b)));
        }
        for line in &ls.lines {
            for w in line.windows(2) {
                let key = (w[0].min(w[1]), w[0].max(w[1]));
                assert!(eset.contains(&key), "line jumps over non-edge {key:?}");
            }
        }
    }

    #[test]
    fn vector_groups_sort_by_length_and_cover_all_lines() {
        let m = wing_mesh(&WingMeshSpec::default());
        let ls = extract_lines(&m, 10.0);
        let groups = ls.vector_groups(64);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, ls.nlines());
        // Descending length across group boundaries.
        let mut prev = usize::MAX;
        for g in &groups {
            assert!(g.len() <= 64);
            for &i in g {
                let len = ls.lines[i as usize].len();
                assert!(len <= prev);
                prev = len;
            }
        }
    }

    #[test]
    fn covering_lines_partition_vertex_set() {
        let m = wing_mesh(&WingMeshSpec::default());
        let ls = extract_lines(&m, 10.0);
        let cover = ls.covering_lines();
        let mut count = vec![0usize; m.nvertices()];
        for line in &cover {
            for &v in line {
                count[v as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}
