//! Geometry primitives: 3-vectors, axis-aligned boxes, triangles.
//!
//! Shared between the unstructured mesh machinery and the Cartesian cut-cell
//! mesher (triangle/box intersection tests drive octree refinement; ray
//! casting classifies cells as inside/outside the geometry).

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Plain 3-vector of `f64`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector; returns zero vector if the norm underflows.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-300 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component by index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn get(self, i: usize) -> f64 {
        match i {
            0 => self.x,
            1 => self.y,
            _ => self.z,
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Aabb {
    /// Empty box (inverted bounds) suitable for accumulation.
    pub fn empty() -> Self {
        Aabb {
            lo: Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            hi: Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    pub fn new(lo: Vec3, hi: Vec3) -> Self {
        Aabb { lo, hi }
    }

    /// Grow to contain `p`.
    pub fn expand(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grow to contain another box.
    pub fn merge(&mut self, o: &Aabb) {
        self.lo = self.lo.min(o.lo);
        self.hi = self.hi.max(o.hi);
    }

    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    pub fn half_extent(&self) -> Vec3 {
        (self.hi - self.lo) * 0.5
    }

    /// Box-box overlap (closed bounds).
    pub fn overlaps(&self, o: &Aabb) -> bool {
        self.lo.x <= o.hi.x
            && self.hi.x >= o.lo.x
            && self.lo.y <= o.hi.y
            && self.hi.y >= o.lo.y
            && self.lo.z <= o.hi.z
            && self.hi.z >= o.lo.z
    }

    /// Point containment (closed bounds).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }
}

/// Triangle with precomputed AABB.
#[derive(Clone, Copy, Debug)]
pub struct Triangle {
    pub a: Vec3,
    pub b: Vec3,
    pub c: Vec3,
}

impl Triangle {
    pub fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    pub fn aabb(&self) -> Aabb {
        let mut bb = Aabb::empty();
        bb.expand(self.a);
        bb.expand(self.b);
        bb.expand(self.c);
        bb
    }

    /// Geometric (unnormalised) normal `= (b-a) x (c-a)`; magnitude is twice
    /// the area.
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    pub fn area(&self) -> f64 {
        0.5 * self.normal().norm()
    }

    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Separating-axis triangle / axis-aligned-box overlap test
    /// (Akenine-Möller). `center`/`half` describe the box.
    pub fn overlaps_box(&self, center: Vec3, half: Vec3) -> bool {
        // Translate triangle to box coordinates.
        let v0 = self.a - center;
        let v1 = self.b - center;
        let v2 = self.c - center;
        let e0 = v1 - v0;
        let e1 = v2 - v1;
        let e2 = v0 - v2;

        // 9 cross-product axes. Projecting all three vertices (rather than
        // the classical two-vertex shortcut) keeps the code uniform.
        let fe = |e: Vec3| Vec3::new(e.x.abs(), e.y.abs(), e.z.abs());
        for (e, (u, v, w)) in [(e0, (v0, v1, v2)), (e1, (v0, v1, v2)), (e2, (v0, v1, v2))] {
            let f = fe(e);
            // axis L = e x (1,0,0) = (0, -e.z, e.y)
            let p0 = -e.z * u.y + e.y * u.z;
            let p1 = -e.z * v.y + e.y * v.z;
            let p2 = -e.z * w.y + e.y * w.z;
            // Two of the three projections always coincide; use min/max of all 3.
            let mn = p0.min(p1).min(p2);
            let mx = p0.max(p1).max(p2);
            if mn > f.z * half.y + f.y * half.z || mx < -(f.z * half.y + f.y * half.z) {
                return false;
            }
            // axis L = e x (0,1,0) = (e.z, 0, -e.x)
            let q0 = e.z * u.x - e.x * u.z;
            let q1 = e.z * v.x - e.x * v.z;
            let q2 = e.z * w.x - e.x * w.z;
            let mn = q0.min(q1).min(q2);
            let mx = q0.max(q1).max(q2);
            if mn > f.z * half.x + f.x * half.z || mx < -(f.z * half.x + f.x * half.z) {
                return false;
            }
            // axis L = e x (0,0,1) = (-e.y, e.x, 0)
            let r0 = -e.y * u.x + e.x * u.y;
            let r1 = -e.y * v.x + e.x * v.y;
            let r2 = -e.y * w.x + e.x * w.y;
            let mn = r0.min(r1).min(r2);
            let mx = r0.max(r1).max(r2);
            if mn > f.y * half.x + f.x * half.y || mx < -(f.y * half.x + f.x * half.y) {
                return false;
            }
        }

        // 3 box face normals.
        for i in 0..3 {
            let mn = v0.get(i).min(v1.get(i)).min(v2.get(i));
            let mx = v0.get(i).max(v1.get(i)).max(v2.get(i));
            if mn > half.get(i) || mx < -half.get(i) {
                return false;
            }
        }

        // Triangle plane vs box.
        let n = e0.cross(e1);
        let d = -n.dot(v0);
        let r = half.x * n.x.abs() + half.y * n.y.abs() + half.z * n.z.abs();
        let s = d; // plane distance at box center
        if s.abs() > r {
            return false;
        }
        true
    }

    /// Möller-Trumbore ray/triangle intersection. Returns the ray parameter
    /// `t >= 0` of the hit, if any. `eps` guards degenerate triangles.
    pub fn ray_hit(&self, origin: Vec3, dir: Vec3) -> Option<f64> {
        const EPS: f64 = 1e-12;
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < EPS {
            return None;
        }
        let inv = 1.0 / det;
        let t0 = origin - self.a;
        let u = t0.dot(p) * inv;
        if !(-EPS..=1.0 + EPS).contains(&u) {
            return None;
        }
        let q = t0.cross(e1);
        let v = dir.dot(q) * inv;
        if v < -EPS || u + v > 1.0 + EPS {
            return None;
        }
        let t = e2.dot(q) * inv;
        if t >= 0.0 {
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra_basics() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(a.dot(b), 0.0);
        assert_eq!((a + b).norm2(), 2.0);
        assert!(((a + b).normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn aabb_overlap_and_containment() {
        let a = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        let b = Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(2.0, 2.0, 2.0));
        let c = Aabb::new(Vec3::new(1.5, 1.5, 1.5), Vec3::new(2.0, 2.0, 2.0));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.contains(Vec3::new(0.5, 0.5, 0.5)));
        assert!(!a.contains(Vec3::new(1.5, 0.5, 0.5)));
    }

    #[test]
    fn triangle_area_and_normal() {
        let t = Triangle::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        assert!((t.area() - 0.5).abs() < 1e-15);
        assert_eq!(t.normal().normalized(), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn tri_box_overlap_basic_cases() {
        let t = Triangle::new(
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        // Box straddling the triangle plane at the origin: overlap.
        assert!(t.overlaps_box(Vec3::ZERO, Vec3::new(0.5, 0.5, 0.5)));
        // Box far above the plane: no overlap.
        assert!(!t.overlaps_box(Vec3::new(0.0, 0.0, 2.0), Vec3::new(0.5, 0.5, 0.5)));
        // Box to the side: no overlap.
        assert!(!t.overlaps_box(Vec3::new(5.0, 0.0, 0.0), Vec3::new(0.5, 0.5, 0.5)));
        // Box containing one vertex only: overlap.
        assert!(t.overlaps_box(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.25, 0.25, 0.25)));
    }

    #[test]
    fn tri_box_cross_axis_separation() {
        // Thin sliver triangle near a box corner that plane/face tests alone
        // would mis-classify; verifies the 9 cross-axis tests matter.
        let t = Triangle::new(
            Vec3::new(1.4, 0.0, 1.4),
            Vec3::new(2.0, 0.0, 0.6),
            Vec3::new(2.0, 0.0, 1.4),
        );
        assert!(!t.overlaps_box(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)));
    }

    #[test]
    fn ray_hits_triangle_interior_and_misses_outside() {
        let t = Triangle::new(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 1.0),
        );
        let hit = t.ray_hit(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!((hit.unwrap() - 1.0).abs() < 1e-12);
        assert!(t
            .ray_hit(Vec3::new(0.9, 0.9, 0.0), Vec3::new(0.0, 0.0, 1.0))
            .is_none());
        // Ray pointing away misses.
        assert!(t
            .ray_hit(Vec3::new(0.2, 0.2, 0.0), Vec3::new(0.0, 0.0, -1.0))
            .is_none());
    }

    columbia_rt::props! {
        /// A box containing the triangle's centroid always overlaps.
        fn prop_box_around_centroid_overlaps(
            a in columbia_rt::props::array::<_, 3>(-5.0f64..5.0),
            b in columbia_rt::props::array::<_, 3>(-5.0f64..5.0),
            c in columbia_rt::props::array::<_, 3>(-5.0f64..5.0),
        ) {
            let t = Triangle::new(
                Vec3::new(a[0], a[1], a[2]),
                Vec3::new(b[0], b[1], b[2]),
                Vec3::new(c[0], c[1], c[2]),
            );
            let centroid = t.centroid();
            assert!(t.overlaps_box(centroid, Vec3::new(0.1, 0.1, 0.1)));
        }

        /// Overlap is symmetric under translation.
        fn prop_overlap_translation_invariant(dx in -3.0f64..3.0, dy in -3.0f64..3.0) {
            let t = Triangle::new(
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
            );
            let shift = Vec3::new(dx, dy, 0.0);
            let t2 = Triangle::new(t.a + shift, t.b + shift, t.c + shift);
            let center = Vec3::new(0.2, 0.2, 0.0);
            let half = Vec3::new(0.5, 0.5, 0.5);
            assert_eq!(
                t.overlaps_box(center, half),
                t2.overlaps_box(center + shift, half)
            );
        }
    }
}
