//! Synthetic mesh generation.
//!
//! The paper's benchmark mesh — 72M points over a DPW wing-body — is
//! proprietary; what the solver algorithms actually *feel* is the dual-graph
//! topology and the anisotropy statistics. [`wing_mesh`] reproduces those: an
//! O-grid around an elliptical wing section, extruded in span, with
//! geometrically stretched "prismatic" layers near the wall (first spacings
//! of 1e-5..1e-6 chord, exactly the regime where the line-implicit smoother
//! is required) and an isotropic, optionally jittered and
//! diagonal-enriched ("tetrahedral") outer region.
//!
//! [`isotropic_box_mesh`] provides a uniform unstructured box for tests.

use crate::geom::Vec3;
use crate::mesh::{BoundaryKind, Edge, UnstructuredMesh};
use columbia_rt::Pcg32;

/// Specification of the synthetic wing mesh.
#[derive(Clone, Debug)]
pub struct WingMeshSpec {
    /// Wrap-around (circumferential) point count, >= 8.
    pub ni: usize,
    /// Spanwise stations, >= 2.
    pub nj: usize,
    /// Normal layers (wall to far field), > `nk_bl` + 2.
    pub nk: usize,
    /// Layers inside the stretched boundary-layer block.
    pub nk_bl: usize,
    /// Wing chord.
    pub chord: f64,
    /// Wing span.
    pub span: f64,
    /// Relative section thickness (ellipse minor/major ratio).
    pub thickness: f64,
    /// First wall-normal spacing (paper: ~1e-5..1e-6 chords).
    pub wall_spacing: f64,
    /// Geometric stretching ratio inside the boundary layer.
    pub stretch: f64,
    /// Far-field distance in chords.
    pub far_field: f64,
    /// Random jitter fraction applied to outer-region points (0 = structured).
    pub jitter: f64,
    /// Add diagonal edges in the outer region (tetrahedral analogue).
    pub tet_diagonals: bool,
    /// RNG seed for jitter.
    pub seed: u64,
}

impl Default for WingMeshSpec {
    fn default() -> Self {
        WingMeshSpec {
            ni: 32,
            nj: 8,
            nk: 16,
            nk_bl: 8,
            chord: 1.0,
            span: 4.0,
            thickness: 0.12,
            wall_spacing: 1e-5,
            stretch: 1.35,
            far_field: 20.0,
            jitter: 0.15,
            tet_diagonals: true,
            seed: 42,
        }
    }
}

impl WingMeshSpec {
    /// A spec producing roughly `n` vertices with default proportions.
    pub fn with_target_points(n: usize) -> Self {
        // ni : nj : nk ~ 4 : 1 : 2 → ni*nj*nk = 8 nj^3.
        let nj = ((n as f64 / 8.0).cbrt().round() as usize).max(2);
        let ni = (4 * nj).max(8);
        let nk = (2 * nj).max(8);
        WingMeshSpec {
            ni,
            nj,
            nk,
            nk_bl: nk / 2,
            ..Default::default()
        }
    }

    /// Total vertex count.
    pub fn npoints(&self) -> usize {
        self.ni * self.nj * self.nk
    }
}

/// Generate the synthetic wing O-mesh.
///
/// # Panics
/// If the spec dimensions are too small (`ni < 8`, `nj < 2`, `nk < nk_bl + 2`).
pub fn wing_mesh(spec: &WingMeshSpec) -> UnstructuredMesh {
    assert!(spec.ni >= 8, "ni too small");
    assert!(spec.nj >= 2, "nj too small");
    assert!(spec.nk >= spec.nk_bl + 2, "nk must exceed nk_bl + 2");
    assert!(spec.stretch > 1.0 && spec.wall_spacing > 0.0);

    let (ni, nj, nk) = (spec.ni, spec.nj, spec.nk);
    let n = ni * nj * nk;
    let id = |i: usize, j: usize, k: usize| (i + ni * (j + nj * k)) as u32;

    // Wall-normal height profile h[k]: geometric in the BL block, then a
    // smooth power-law fill to the far field.
    let mut h = vec![0.0f64; nk];
    for k in 1..=spec.nk_bl.min(nk - 1) {
        h[k] = spec.wall_spacing * (spec.stretch.powi(k as i32) - 1.0) / (spec.stretch - 1.0);
    }
    let bl_top = h[spec.nk_bl.min(nk - 1)];
    let ff = spec.far_field * spec.chord;
    for k in (spec.nk_bl + 1)..nk {
        let s = (k - spec.nk_bl) as f64 / (nk - 1 - spec.nk_bl) as f64;
        h[k] = bl_top + (ff - bl_top) * s.powf(1.6);
    }

    // Elliptical section: a = chord/2, b = thickness*chord/2.
    let a = 0.5 * spec.chord;
    let b = 0.5 * spec.thickness * spec.chord;

    let mut rng = Pcg32::seed_from_u64(spec.seed);
    let mut points = vec![Vec3::ZERO; n];
    let mut wall_distance = vec![0.0f64; n];
    let mut bc = vec![BoundaryKind::Interior; n];

    for k in 0..nk {
        for j in 0..nj {
            let z = spec.span * j as f64 / (nj - 1) as f64;
            for i in 0..ni {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / ni as f64;
                let sx = a * theta.cos();
                let sy = b * theta.sin();
                // Outward ellipse normal.
                let nvec = Vec3::new(theta.cos() / a, theta.sin() / b, 0.0).normalized();
                let mut p = Vec3::new(sx, sy, z) + nvec * h[k];
                // Jitter only deep in the isotropic region and away from
                // domain boundaries, so boundary conditions stay clean.
                if spec.jitter > 0.0 && k > spec.nk_bl + 1 && k < nk - 1 && j > 0 && j < nj - 1 {
                    let local = if k + 1 < nk { h[k + 1] - h[k] } else { 0.0 };
                    let amp = spec.jitter * 0.25 * local;
                    p += Vec3::new(
                        rng.gen_range(-amp..=amp),
                        rng.gen_range(-amp..=amp),
                        rng.gen_range(-amp..=amp),
                    );
                }
                let v = id(i, j, k) as usize;
                points[v] = p;
                wall_distance[v] = h[k].max(0.5 * spec.wall_spacing);
                bc[v] = if k == 0 {
                    BoundaryKind::Wall
                } else if k == nk - 1 || j == 0 || j == nj - 1 {
                    BoundaryKind::FarField
                } else {
                    BoundaryKind::Interior
                };
            }
        }
    }

    // Local spacings per vertex for metric construction.
    let dist = |u: u32, v: u32| (points[u as usize] - points[v as usize]).norm();
    let mut di = vec![0.0f64; n];
    let mut dj = vec![0.0f64; n];
    let mut dk = vec![0.0f64; n];
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                let v = id(i, j, k);
                let ip = id((i + 1) % ni, j, k);
                let im = id((i + ni - 1) % ni, j, k);
                di[v as usize] = 0.5 * (dist(v, ip) + dist(v, im));
                let (jm, jp) = (j.saturating_sub(1), (j + 1).min(nj - 1));
                dj[v as usize] = if jp == jm {
                    spec.span / (nj - 1) as f64
                } else {
                    (dist(v, id(i, jp, k)) + dist(v, id(i, jm, k))) / (jp - jm) as f64
                };
                let (km, kp) = (k.saturating_sub(1), (k + 1).min(nk - 1));
                dk[v as usize] = if kp == km {
                    spec.wall_spacing
                } else {
                    (dist(v, id(i, j, kp)) + dist(v, id(i, j, km))) / (kp - km) as f64
                };
            }
        }
    }

    let mut volumes = vec![0.0f64; n];
    for v in 0..n {
        volumes[v] = (di[v] * dj[v] * dk[v]).max(1e-300);
    }

    // Edges with dual-face area normals (orthogonal-metric approximation:
    // the dual face of an edge has area equal to the product of the two
    // transverse spacings, averaged between the endpoints).
    let mut edges = Vec::with_capacity(3 * n + if spec.tet_diagonals { n / 2 } else { 0 });
    let mut push_edge = |u: u32, w: u32, area: f64, points: &[Vec3]| {
        let d = points[w as usize] - points[u as usize];
        let len = d.norm();
        if len > 0.0 && area > 0.0 {
            edges.push(Edge {
                a: u,
                b: w,
                normal: d.normalized() * area,
                length: len,
            });
        }
    };
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                let v = id(i, j, k);
                let vu = v as usize;
                // i-direction (wraps).
                let w = id((i + 1) % ni, j, k);
                let area = 0.5 * (dj[vu] * dk[vu] + dj[w as usize] * dk[w as usize]);
                push_edge(v, w, area, &points);
                // j-direction.
                if j + 1 < nj {
                    let w = id(i, j + 1, k);
                    let area = 0.5 * (di[vu] * dk[vu] + di[w as usize] * dk[w as usize]);
                    push_edge(v, w, area, &points);
                }
                // k-direction.
                if k + 1 < nk {
                    let w = id(i, j, k + 1);
                    let area = 0.5 * (di[vu] * dj[vu] + di[w as usize] * dj[w as usize]);
                    push_edge(v, w, area, &points);
                }
                // Outer-region diagonals (tetrahedral analogue): alternate
                // orientation per parity to avoid directional bias.
                if spec.tet_diagonals && k >= spec.nk_bl && k + 1 < nk {
                    let w = if (i + j + k) % 2 == 0 {
                        id((i + 1) % ni, j, k + 1)
                    } else if j + 1 < nj {
                        id(i, j + 1, k + 1)
                    } else {
                        v
                    };
                    if w != v {
                        let area = 0.25 * (di[vu] * dj[vu] + dj[vu] * dk[vu]) * 0.5;
                        push_edge(v, w, area, &points);
                    }
                }
            }
        }
    }

    let m = UnstructuredMesh {
        points,
        edges,
        volumes,
        bc,
        wall_distance,
    };
    debug_assert!(m.validate().is_ok(), "{:?}", m.validate());
    m
}

/// Uniform isotropic box mesh on `[0,1]^3` with `nx x ny x nz` vertices.
/// All boundary vertices are far field; intended for solver sanity tests
/// (free-stream preservation, agglomeration statistics).
pub fn isotropic_box_mesh(nx: usize, ny: usize, nz: usize) -> UnstructuredMesh {
    assert!(nx >= 2 && ny >= 2 && nz >= 2);
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u32;
    let (hx, hy, hz) = (
        1.0 / (nx - 1) as f64,
        1.0 / (ny - 1) as f64,
        1.0 / (nz - 1) as f64,
    );
    let mut points = Vec::with_capacity(n);
    let mut bc = Vec::with_capacity(n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                points.push(Vec3::new(x as f64 * hx, y as f64 * hy, z as f64 * hz));
                let boundary =
                    x == 0 || x == nx - 1 || y == 0 || y == ny - 1 || z == 0 || z == nz - 1;
                bc.push(if boundary {
                    BoundaryKind::FarField
                } else {
                    BoundaryKind::Interior
                });
            }
        }
    }
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = id(x, y, z);
                if x + 1 < nx {
                    edges.push(Edge {
                        a: v,
                        b: id(x + 1, y, z),
                        normal: Vec3::new(hy * hz, 0.0, 0.0),
                        length: hx,
                    });
                }
                if y + 1 < ny {
                    edges.push(Edge {
                        a: v,
                        b: id(x, y + 1, z),
                        normal: Vec3::new(0.0, hx * hz, 0.0),
                        length: hy,
                    });
                }
                if z + 1 < nz {
                    edges.push(Edge {
                        a: v,
                        b: id(x, y, z + 1),
                        normal: Vec3::new(0.0, 0.0, hx * hy),
                        length: hz,
                    });
                }
            }
        }
    }
    let volumes = vec![hx * hy * hz; n];
    let wall_distance = vec![1.0; n];
    UnstructuredMesh {
        points,
        edges,
        volumes,
        bc,
        wall_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::BoundaryKind;

    #[test]
    fn wing_mesh_is_valid_and_sized() {
        let spec = WingMeshSpec::default();
        let m = wing_mesh(&spec);
        assert_eq!(m.nvertices(), spec.npoints());
        m.validate().unwrap();
    }

    #[test]
    fn wall_and_farfield_bands_present() {
        let spec = WingMeshSpec::default();
        let m = wing_mesh(&spec);
        let walls = m.bc.iter().filter(|&&b| b == BoundaryKind::Wall).count();
        let far =
            m.bc.iter()
                .filter(|&&b| b == BoundaryKind::FarField)
                .count();
        assert_eq!(walls, spec.ni * spec.nj);
        assert!(far >= spec.ni * spec.nj, "missing far-field shell");
    }

    #[test]
    fn boundary_layer_is_strongly_anisotropic() {
        let spec = WingMeshSpec {
            jitter: 0.0,
            ..Default::default()
        };
        let m = wing_mesh(&spec);
        // A wall vertex's k-edge must be far shorter than its i-edge.
        let ve = m.vertex_edges();
        let v = 0usize; // (0, 0, 0) is a wall vertex
        let mut min_len = f64::INFINITY;
        let mut max_len: f64 = 0.0;
        for r in ve.of(v) {
            let e = &m.edges[r.edge as usize];
            min_len = min_len.min(e.length);
            max_len = max_len.max(e.length);
        }
        assert!(
            max_len / min_len > 100.0,
            "anisotropy too weak: {max_len} / {min_len}"
        );
    }

    #[test]
    fn connected_single_component() {
        let m = wing_mesh(&WingMeshSpec::default());
        let (_, ncomp) = m.dual_graph().connected_components();
        assert_eq!(ncomp, 1);
    }

    #[test]
    fn target_points_spec_is_close() {
        let spec = WingMeshSpec::with_target_points(30_000);
        let n = spec.npoints();
        assert!(n > 12_000 && n < 80_000, "got {n}");
    }

    #[test]
    fn isotropic_box_mesh_is_valid() {
        let m = isotropic_box_mesh(5, 4, 3);
        assert_eq!(m.nvertices(), 60);
        m.validate().unwrap();
        // Total volume sums to ~1 (vertex CVs tile the cube approximately;
        // uniform per-vertex volume over-counts by n/(cells) — just check
        // positive and finite).
        assert!(m.total_volume() > 0.0);
        let (_, ncomp) = m.dual_graph().connected_components();
        assert_eq!(ncomp, 1);
    }

    #[test]
    fn mesh_generation_is_deterministic() {
        let spec = WingMeshSpec::default();
        let a = wing_mesh(&spec);
        let b = wing_mesh(&spec);
        assert_eq!(a.points.len(), b.points.len());
        for (p, q) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(p, q);
        }
    }
}
