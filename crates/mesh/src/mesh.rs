//! The edge-based unstructured mesh (median-dual view).
//!
//! The vertex-centred finite-volume solver never needs the elements
//! themselves — only the dual: one control volume per vertex, one dual face
//! (area-weighted normal) per edge, and boundary conditions per vertex. The
//! generator in [`crate::generator`] produces this dual directly.

use crate::geom::Vec3;
use columbia_partition::Graph;

/// Boundary condition attached to a vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BoundaryKind {
    /// Interior point: no boundary condition.
    #[default]
    Interior,
    /// Solid wall (no-slip for viscous runs, slip for inviscid).
    Wall,
    /// Far-field: state pinned to free stream.
    FarField,
}

/// A dual edge between two vertices.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// First endpoint (owner of the positive normal direction).
    pub a: u32,
    /// Second endpoint.
    pub b: u32,
    /// Area-weighted dual-face normal, pointing from `a` towards `b`.
    pub normal: Vec3,
    /// Distance between the endpoints.
    pub length: f64,
}

/// Vertex-centred unstructured mesh in dual (edge-based) form.
#[derive(Clone, Debug, Default)]
pub struct UnstructuredMesh {
    /// Vertex coordinates (coarse agglomerated levels store centroids).
    pub points: Vec<Vec3>,
    /// Dual edges with face normals.
    pub edges: Vec<Edge>,
    /// Control-volume size per vertex.
    pub volumes: Vec<f64>,
    /// Boundary condition per vertex.
    pub bc: Vec<BoundaryKind>,
    /// Distance to the nearest wall per vertex (turbulence model input).
    pub wall_distance: Vec<f64>,
}

impl UnstructuredMesh {
    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.points.len()
    }

    /// Number of dual edges.
    pub fn nedges(&self) -> usize {
        self.edges.len()
    }

    /// Total control-volume size.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// The vertex adjacency graph (for partitioning / reordering /
    /// agglomeration). Vertex weights 1, edge weights 1.
    pub fn dual_graph(&self) -> Graph {
        let pairs: Vec<(u32, u32)> = self.edges.iter().map(|e| (e.a, e.b)).collect();
        Graph::unweighted(self.nvertices(), &pairs)
    }

    /// Adjacency in CSR form as (edge index, other endpoint, direction sign)
    /// per vertex: sign +1 when the vertex is `a` (normal points away),
    /// -1 when it is `b`.
    pub fn vertex_edges(&self) -> VertexEdges {
        let n = self.nvertices();
        let mut deg = vec![0usize; n];
        for e in &self.edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for d in &deg {
            xadj.push(xadj.last().unwrap() + d);
        }
        let total = *xadj.last().unwrap();
        let mut items = vec![
            VertexEdgeRef {
                edge: 0,
                other: 0,
                sign: 0.0
            };
            total
        ];
        let mut cursor = xadj[..n].to_vec();
        for (ei, e) in self.edges.iter().enumerate() {
            items[cursor[e.a as usize]] = VertexEdgeRef {
                edge: ei as u32,
                other: e.b,
                sign: 1.0,
            };
            cursor[e.a as usize] += 1;
            items[cursor[e.b as usize]] = VertexEdgeRef {
                edge: ei as u32,
                other: e.a,
                sign: -1.0,
            };
            cursor[e.b as usize] += 1;
        }
        VertexEdges { xadj, items }
    }

    /// Apply a vertex permutation (`perm[new] = old`), renumbering edges and
    /// all per-vertex arrays. Used after RCM reordering.
    pub fn permute(&self, perm: &[u32]) -> UnstructuredMesh {
        let n = self.nvertices();
        assert_eq!(perm.len(), n);
        let mut inv = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        let points = perm.iter().map(|&o| self.points[o as usize]).collect();
        let volumes = perm.iter().map(|&o| self.volumes[o as usize]).collect();
        let bc = perm.iter().map(|&o| self.bc[o as usize]).collect();
        let wall_distance = perm
            .iter()
            .map(|&o| self.wall_distance[o as usize])
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                a: inv[e.a as usize],
                b: inv[e.b as usize],
                normal: e.normal,
                length: e.length,
            })
            .collect();
        UnstructuredMesh {
            points,
            edges,
            volumes,
            bc,
            wall_distance,
        }
    }

    /// Structural sanity check used by tests: consistent array lengths,
    /// valid endpoints, positive volumes, finite normals.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nvertices();
        if self.volumes.len() != n || self.bc.len() != n || self.wall_distance.len() != n {
            return Err("per-vertex array length mismatch".into());
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.a as usize >= n || e.b as usize >= n {
                return Err(format!("edge {i} endpoint out of range"));
            }
            if e.a == e.b {
                return Err(format!("edge {i} is a self loop"));
            }
            if !(e.length > 0.0) || !e.normal.norm().is_finite() {
                return Err(format!("edge {i} has degenerate geometry"));
            }
        }
        for (i, &v) in self.volumes.iter().enumerate() {
            if !(v > 0.0) || !v.is_finite() {
                return Err(format!("vertex {i} has non-positive volume {v}"));
            }
        }
        Ok(())
    }
}

/// Per-vertex incident-edge reference.
#[derive(Clone, Copy, Debug)]
pub struct VertexEdgeRef {
    /// Index into `mesh.edges`.
    pub edge: u32,
    /// The other endpoint.
    pub other: u32,
    /// +1 if this vertex is `a` of the edge, -1 if `b`.
    pub sign: f64,
}

/// CSR incident-edge table.
#[derive(Clone, Debug)]
pub struct VertexEdges {
    xadj: Vec<usize>,
    items: Vec<VertexEdgeRef>,
}

impl VertexEdges {
    /// Incident edges of vertex `v`.
    #[inline]
    pub fn of(&self, v: usize) -> &[VertexEdgeRef] {
        &self.items[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Number of vertices covered.
    pub fn nvertices(&self) -> usize {
        self.xadj.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_edge_mesh() -> UnstructuredMesh {
        UnstructuredMesh {
            points: vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(2.0, 0.0, 0.0),
            ],
            edges: vec![
                Edge {
                    a: 0,
                    b: 1,
                    normal: Vec3::new(1.0, 0.0, 0.0),
                    length: 1.0,
                },
                Edge {
                    a: 1,
                    b: 2,
                    normal: Vec3::new(1.0, 0.0, 0.0),
                    length: 1.0,
                },
            ],
            volumes: vec![1.0, 1.0, 1.0],
            bc: vec![
                BoundaryKind::Wall,
                BoundaryKind::Interior,
                BoundaryKind::FarField,
            ],
            wall_distance: vec![0.0, 1.0, 2.0],
        }
    }

    #[test]
    fn vertex_edges_signs_and_degrees() {
        let m = two_edge_mesh();
        let ve = m.vertex_edges();
        assert_eq!(ve.of(0).len(), 1);
        assert_eq!(ve.of(1).len(), 2);
        assert_eq!(ve.of(0)[0].sign, 1.0);
        assert_eq!(ve.of(1).iter().map(|r| r.sign).sum::<f64>(), 0.0);
        assert_eq!(ve.of(2)[0].sign, -1.0);
    }

    #[test]
    fn permute_roundtrip_preserves_structure() {
        let m = two_edge_mesh();
        let p = m.permute(&[2, 0, 1]);
        p.validate().unwrap();
        assert_eq!(p.points[0], Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(p.bc[0], BoundaryKind::FarField);
        // Edge 0-1 became edge between new ids of 0 and 1: inv[0]=1, inv[1]=2.
        assert_eq!((p.edges[0].a, p.edges[0].b), (1, 2));
        assert_eq!(p.total_volume(), m.total_volume());
    }

    #[test]
    fn dual_graph_matches_edges() {
        let m = two_edge_mesh();
        let g = m.dual_graph();
        assert_eq!(g.nvertices(), 3);
        assert_eq!(g.nedges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_meshes() {
        let mut m = two_edge_mesh();
        m.volumes[1] = -1.0;
        assert!(m.validate().is_err());
        let mut m2 = two_edge_mesh();
        m2.edges[0].b = 9;
        assert!(m2.validate().is_err());
        let mut m3 = two_edge_mesh();
        m3.edges[0].b = 0;
        assert!(m3.validate().is_err());
    }
}
