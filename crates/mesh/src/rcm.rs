//! Reverse Cuthill-McKee reordering for cache locality.
//!
//! The paper (§III): "For cache-based scalar processors, such as the Intel
//! Itanium on the NASA Columbia machine, the grid data is reordered for
//! cache locality using a reverse Cuthill-McKee type algorithm."

use columbia_partition::Graph;
use std::collections::VecDeque;

/// Compute an RCM permutation of `g`; returns `perm` with `perm[new] = old`.
///
/// Starts each component's BFS from a pseudo-peripheral vertex (the end of a
/// double BFS sweep); neighbours are visited in increasing-degree order; the
/// final ordering is reversed.
pub fn reverse_cuthill_mckee(g: &Graph) -> Vec<u32> {
    let n = g.nvertices();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut scratch: Vec<u32> = Vec::new();

    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Pseudo-peripheral start: BFS twice.
        let s1 = bfs_farthest(g, start, &visited);
        let s2 = bfs_farthest(g, s1, &visited);
        // Cuthill-McKee BFS from s2.
        let mut q = VecDeque::new();
        visited[s2] = true;
        q.push_back(s2 as u32);
        while let Some(v) = q.pop_front() {
            order.push(v);
            scratch.clear();
            for &u in g.neighbors(v as usize) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    scratch.push(u);
                }
            }
            scratch.sort_unstable_by_key(|&u| g.degree(u as usize));
            for &u in &scratch {
                q.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// BFS from `start` over unvisited vertices; returns the last vertex popped
/// (a farthest vertex).
fn bfs_farthest(g: &Graph, start: usize, visited_global: &[bool]) -> usize {
    let mut seen = vec![false; g.nvertices()];
    let mut q = VecDeque::new();
    seen[start] = true;
    q.push_back(start);
    let mut last = start;
    while let Some(v) = q.pop_front() {
        last = v;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !seen[u] && !visited_global[u] {
                seen[u] = true;
                q.push_back(u);
            }
        }
    }
    last
}

/// Graph bandwidth under a permutation (`perm[new] = old`): the maximum
/// |new(u) - new(v)| over edges. Lower is cache-friendlier.
pub fn bandwidth(g: &Graph, perm: &[u32]) -> usize {
    let n = g.nvertices();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new;
    }
    let mut bw = 0usize;
    for v in 0..n {
        for &u in g.neighbors(v) {
            let d = inv[v].abs_diff(inv[u as usize]);
            bw = bw.max(d);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_partition::graph::grid_graph;
    use columbia_rt::Pcg32;

    fn identity_perm(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let g = grid_graph(7, 5, 3);
        let perm = reverse_cuthill_mckee(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_perm(g.nvertices()));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        // Shuffle a grid graph's vertex ids, then check RCM restores low
        // bandwidth.
        let g = grid_graph(20, 20, 1);
        let n = g.nvertices();
        let mut rng = Pcg32::seed_from_u64(3);
        let mut relabel: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut relabel);
        // Build shuffled graph.
        let mut edges = Vec::new();
        for v in 0..n {
            for &u in g.neighbors(v) {
                if (u as usize) > v {
                    edges.push((relabel[v], relabel[u as usize]));
                }
            }
        }
        let shuffled = Graph::unweighted(n, &edges);
        let bw_before = bandwidth(&shuffled, &identity_perm(n));
        let perm = reverse_cuthill_mckee(&shuffled);
        let bw_after = bandwidth(&shuffled, &perm);
        assert!(
            bw_after * 4 < bw_before,
            "RCM failed to reduce bandwidth: {bw_before} -> {bw_after}"
        );
        // A 20x20 grid has optimal bandwidth ~20.
        assert!(bw_after <= 40, "bandwidth {bw_after} too high");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::unweighted(6, &[(0, 1), (2, 3)]);
        let perm = reverse_cuthill_mckee(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, identity_perm(6));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::unweighted(0, &[]);
        assert!(reverse_cuthill_mckee(&g).is_empty());
    }
}
