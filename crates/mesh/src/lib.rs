//! Unstructured meshes for the NSU3D-style high-fidelity solver.
//!
//! NSU3D operates on vertex-centred median-dual control volumes over hybrid
//! prism/tet meshes whose boundary-layer regions are extremely anisotropic
//! (normal wall spacings of 1e-6 chords against chordwise spacings orders of
//! magnitude larger). The paper's 72M-point DPW wing-body mesh is
//! proprietary; this crate provides a *synthetic* generator that reproduces
//! the properties the solver and the scalability study actually exercise:
//!
//! * an edge-based dual with area-weighted face normals and vertex volumes,
//! * geometric wall-normal stretching (prismatic-layer analogue),
//! * an isotropic outer region (tetrahedral analogue),
//! * wall / far-field boundary conditions and wall distances.
//!
//! On top of the mesh type sit the algorithms of paper §III:
//! [`lines`] (implicit-line extraction for the line-implicit smoother),
//! [`agglomerate()`](agglomerate::agglomerate) (multigrid coarse-level construction by control-volume
//! agglomeration), [`rcm`] (reverse Cuthill-McKee cache reordering), and
//! [`geom`] (vector/triangle primitives shared with the Cartesian crate).

#![allow(clippy::needless_range_loop)] // index loops mirror the stencil/block structure of the kernels
#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0.0)` deliberately catches NaNs

pub mod agglomerate;
pub mod generator;
pub mod geom;
pub mod lines;
pub mod mesh;
pub mod rcm;

pub use agglomerate::{agglomerate, agglomerate_hierarchy, Agglomeration};
pub use generator::{isotropic_box_mesh, wing_mesh, WingMeshSpec};
pub use geom::{Aabb, Triangle, Vec3};
pub use lines::{extract_lines, LineSet};
pub use mesh::{BoundaryKind, Edge, UnstructuredMesh};
pub use rcm::reverse_cuthill_mckee;
