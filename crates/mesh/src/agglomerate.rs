//! Agglomeration multigrid coarse-level construction (paper Figures 2-3).
//!
//! Coarse levels are built by merging neighbouring fine control volumes: a
//! seed vertex is chosen and all its unagglomerated neighbours are merged
//! with it into one coarse control volume; the procedure runs over a BFS
//! frontier (seeded at the wall so boundary-layer agglomerates stay clean)
//! and is applied recursively for the full fine-to-coarse sequence. Fine
//! dual-face normals are *summed* into coarse faces, so the coarse
//! discretisation conserves exactly what the fine one does.

use crate::geom::Vec3;
use crate::mesh::{BoundaryKind, Edge, UnstructuredMesh};
use std::collections::{HashMap, VecDeque};

/// One agglomeration step: the coarse mesh plus the fine→coarse map.
#[derive(Clone, Debug)]
pub struct Agglomeration {
    /// The agglomerated (coarser) mesh.
    pub coarse: UnstructuredMesh,
    /// `fine_to_coarse[v]` = coarse control volume containing fine vertex `v`.
    pub fine_to_coarse: Vec<u32>,
}

impl Agglomeration {
    /// Fine/coarse vertex-count ratio.
    pub fn ratio(&self, fine_nvertices: usize) -> f64 {
        fine_nvertices as f64 / self.coarse.nvertices().max(1) as f64
    }
}

/// Perform one seed-based agglomeration pass.
pub fn agglomerate(fine: &UnstructuredMesh) -> Agglomeration {
    let n = fine.nvertices();
    let ve = fine.vertex_edges();
    let mut cmap = vec![u32::MAX; n];
    let mut ncoarse = 0u32;

    // BFS frontier seeded at wall vertices, then far field, then the rest —
    // keeps agglomerates layered away from the wall.
    let mut queue: VecDeque<u32> = VecDeque::new();
    for v in 0..n {
        if fine.bc[v] == BoundaryKind::Wall {
            queue.push_back(v as u32);
        }
    }
    for v in 0..n {
        if fine.bc[v] != BoundaryKind::Wall {
            queue.push_back(v as u32);
        }
    }

    while let Some(seed) = queue.pop_front() {
        let s = seed as usize;
        if cmap[s] != u32::MAX {
            continue;
        }
        let cid = ncoarse;
        ncoarse += 1;
        cmap[s] = cid;
        for r in ve.of(s) {
            let u = r.other as usize;
            if cmap[u] == u32::MAX {
                cmap[u] = cid;
                // Push second-ring vertices so the frontier stays contiguous.
                for r2 in ve.of(u) {
                    if cmap[r2.other as usize] == u32::MAX {
                        queue.push_back(r2.other);
                    }
                }
            }
        }
    }

    // Cleanup pass: merge small agglomerates (<= 3 fine vertices) into
    // their most strongly connected neighbour. Without this, frontier
    // collisions leave many 1-2 vertex agglomerates and the coarsening
    // ratio collapses to ~2; with it the ratio lands in the 5-8 band the
    // paper reports.
    let nc0 = ncoarse as usize;
    let mut sizes = vec![0usize; nc0];
    for &c in &cmap {
        sizes[c as usize] += 1;
    }
    // Union-find over coarse ids.
    let mut parent: Vec<u32> = (0..nc0 as u32).collect();
    fn find(parent: &mut [u32], mut c: u32) -> u32 {
        while parent[c as usize] != c {
            let p = parent[c as usize];
            parent[c as usize] = parent[p as usize];
            c = parent[c as usize];
        }
        c
    }
    // Precompute coarse adjacency (neighbour, coupling) lists once.
    // BTreeMap keeps the tie-breaking of "strongest neighbour" fully
    // deterministic across runs (HashMap iteration order is seeded).
    let mut cadj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); nc0];
    {
        let mut accw: std::collections::BTreeMap<(u32, u32), f64> = Default::default();
        for e in &fine.edges {
            let ca = cmap[e.a as usize];
            let cb = cmap[e.b as usize];
            if ca != cb {
                let key = (ca.min(cb), ca.max(cb));
                *accw.entry(key).or_insert(0.0) += e.normal.norm();
            }
        }
        for ((a, b), w) in accw {
            cadj[a as usize].push((b, w));
            cadj[b as usize].push((a, w));
        }
    }
    for small in 0..nc0 as u32 {
        let sroot = find(&mut parent, small);
        if sizes[sroot as usize] > 3 || sizes[sroot as usize] == 0 {
            continue;
        }
        // Strongest neighbouring agglomerate (resolved through merges),
        // capped so cleanup merges cannot cascade into giant blobs.
        let max_merged = 9;
        let mut best: Option<(u32, f64)> = None;
        for &(nb, w) in &cadj[small as usize] {
            let nroot = find(&mut parent, nb);
            if nroot == sroot || sizes[nroot as usize] + sizes[sroot as usize] > max_merged {
                continue;
            }
            match best {
                Some((_, bw)) if bw >= w => {}
                _ => best = Some((nroot, w)),
            }
        }
        if let Some((troot, _)) = best {
            parent[sroot as usize] = troot;
            sizes[troot as usize] += sizes[sroot as usize];
            sizes[sroot as usize] = 0;
        }
    }
    // Compact renumbering.
    let mut compact = vec![u32::MAX; nc0];
    let mut nc_final = 0u32;
    for v in 0..n {
        let root = find(&mut parent, cmap[v]);
        if compact[root as usize] == u32::MAX {
            compact[root as usize] = nc_final;
            nc_final += 1;
        }
        cmap[v] = compact[root as usize];
    }
    let ncoarse = nc_final;

    let nc = ncoarse as usize;
    // Coarse volumes, centroids, wall distances, boundary kinds.
    let mut volumes = vec![0.0f64; nc];
    let mut centroid = vec![Vec3::ZERO; nc];
    let mut wall_distance = vec![0.0f64; nc];
    let mut bc = vec![BoundaryKind::Interior; nc];
    for v in 0..n {
        let c = cmap[v] as usize;
        let w = fine.volumes[v];
        volumes[c] += w;
        centroid[c] += fine.points[v] * w;
        wall_distance[c] += fine.wall_distance[v] * w;
        // Wall dominates, then far field.
        bc[c] = match (bc[c], fine.bc[v]) {
            (BoundaryKind::Wall, _) | (_, BoundaryKind::Wall) => BoundaryKind::Wall,
            (BoundaryKind::FarField, _) | (_, BoundaryKind::FarField) => BoundaryKind::FarField,
            _ => BoundaryKind::Interior,
        };
    }
    for c in 0..nc {
        let w = volumes[c].max(1e-300);
        centroid[c] = centroid[c] / w;
        wall_distance[c] /= w;
    }

    // Coarse edges: sum fine dual-face normals between distinct agglomerates.
    let mut acc: HashMap<(u32, u32), Vec3> = HashMap::new();
    for e in &fine.edges {
        let ca = cmap[e.a as usize];
        let cb = cmap[e.b as usize];
        if ca == cb {
            continue;
        }
        let (key, sign) = if ca < cb {
            ((ca, cb), 1.0)
        } else {
            ((cb, ca), -1.0)
        };
        *acc.entry(key).or_insert(Vec3::ZERO) += e.normal * sign;
    }
    let mut edges: Vec<Edge> = acc
        .into_iter()
        .map(|((a, b), normal)| {
            let length = (centroid[a as usize] - centroid[b as usize])
                .norm()
                .max(1e-300);
            Edge {
                a,
                b,
                normal,
                length,
            }
        })
        .collect();
    // Deterministic ordering (HashMap iteration order is not).
    edges.sort_unstable_by_key(|e| (e.a, e.b));

    let coarse = UnstructuredMesh {
        points: centroid,
        edges,
        volumes,
        bc,
        wall_distance,
    };
    Agglomeration {
        coarse,
        fine_to_coarse: cmap,
    }
}

/// Build a sequence of agglomerated levels.
///
/// Element `l` of the result coarsens level `l` into level `l + 1`; the
/// sequence stops after `max_levels - 1` coarsenings or when a level would
/// drop below `min_vertices` vertices.
pub fn agglomerate_hierarchy(
    fine: &UnstructuredMesh,
    max_levels: usize,
    min_vertices: usize,
) -> Vec<Agglomeration> {
    let mut steps: Vec<Agglomeration> = Vec::new();
    let mut current = fine;
    for _ in 1..max_levels {
        if current.nvertices() <= min_vertices {
            break;
        }
        let step = agglomerate(current);
        // No progress, or a degenerate coarsest level (too few control
        // volumes to carry a meaningful operator): stop without the step.
        if step.coarse.nvertices() >= current.nvertices() || step.coarse.nvertices() < min_vertices
        {
            break;
        }
        steps.push(step);
        current = &steps.last().unwrap().coarse;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{isotropic_box_mesh, wing_mesh, WingMeshSpec};

    #[test]
    fn volume_is_conserved() {
        let m = isotropic_box_mesh(8, 8, 8);
        let a = agglomerate(&m);
        assert!((a.coarse.total_volume() - m.total_volume()).abs() < 1e-12);
    }

    #[test]
    fn coarsening_ratio_in_expected_band() {
        // Seed-plus-neighbours merging on a 6-connected 3-D grid gives
        // ratios around 5-8 (the paper quotes >7 for Cart3D's scheme and
        // similar magnitudes for agglomeration).
        let m = isotropic_box_mesh(16, 16, 16);
        let a = agglomerate(&m);
        let r = a.ratio(m.nvertices());
        assert!(r > 3.0 && r < 10.0, "ratio {r}");
    }

    #[test]
    fn map_is_complete_and_surjective() {
        let m = isotropic_box_mesh(6, 6, 6);
        let a = agglomerate(&m);
        assert!(a.fine_to_coarse.iter().all(|&c| c != u32::MAX));
        let nc = a.coarse.nvertices();
        let mut hit = vec![false; nc];
        for &c in &a.fine_to_coarse {
            hit[c as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn coarse_mesh_is_structurally_valid_and_connected() {
        let m = wing_mesh(&WingMeshSpec::default());
        let a = agglomerate(&m);
        a.coarse.validate().unwrap();
        let (_, ncomp) = a.coarse.dual_graph().connected_components();
        assert_eq!(ncomp, 1);
    }

    #[test]
    fn wall_flag_propagates_to_coarse() {
        let m = wing_mesh(&WingMeshSpec::default());
        let a = agglomerate(&m);
        let coarse_walls = a
            .coarse
            .bc
            .iter()
            .filter(|&&b| b == BoundaryKind::Wall)
            .count();
        assert!(coarse_walls > 0, "wall boundary lost in agglomeration");
    }

    #[test]
    fn hierarchy_reaches_small_coarsest_level() {
        let m = wing_mesh(&WingMeshSpec::default());
        let steps = agglomerate_hierarchy(&m, 6, 10);
        assert!(steps.len() >= 3, "only {} levels built", steps.len());
        // Strictly decreasing sizes.
        let mut prev = m.nvertices();
        for s in &steps {
            assert!(s.coarse.nvertices() < prev);
            prev = s.coarse.nvertices();
        }
        // Volume conserved through the whole hierarchy.
        let last = &steps.last().unwrap().coarse;
        assert!((last.total_volume() - m.total_volume()).abs() < 1e-9 * m.total_volume());
    }

    #[test]
    fn coarse_normals_sum_like_fine_normals() {
        // Gauss check: for any agglomerate, the sum of its outward coarse
        // face normals equals the sum of fine outward normals of its
        // children across the agglomerate boundary (construction identity);
        // verify for one agglomerate on a small mesh.
        let m = isotropic_box_mesh(5, 5, 5);
        let a = agglomerate(&m);
        let target = 0u32;
        let mut fine_sum = Vec3::ZERO;
        for e in &m.edges {
            let ca = a.fine_to_coarse[e.a as usize];
            let cb = a.fine_to_coarse[e.b as usize];
            if ca == target && cb != target {
                fine_sum += e.normal;
            } else if cb == target && ca != target {
                fine_sum -= e.normal;
            }
        }
        let mut coarse_sum = Vec3::ZERO;
        for e in &a.coarse.edges {
            if e.a == target {
                coarse_sum += e.normal;
            } else if e.b == target {
                coarse_sum -= e.normal;
            }
        }
        assert!((fine_sum - coarse_sum).norm() < 1e-12);
    }
}
