//! SSLV cut-cell meshing, SFC coarsening and 16-way decomposition
//! (paper Figures 9, 11 and 12).
//!
//! Builds the synthetic Space Shuttle Launch Vehicle stack (orbiter,
//! external tank, two SRBs, attach hardware), meshes it with the adaptive
//! cut-cell Cartesian generator, reports the single-pass SFC coarsening
//! hierarchy (paper: ratios "in excess of 7") and the quality of the
//! 16-way Peano-Hilbert decomposition with cut cells weighted 2.1x.
//!
//! ```text
//! cargo run --release --example sslv_cutcell [max_level]
//! ```

use columbia_cartesian::{
    build_octree, coarsen_hierarchy, extract_mesh, partition_cells, sslv_geometry, CutCellConfig,
};
use columbia_sfc::CurveKind;
use std::time::Instant;

fn main() {
    let max_level: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    println!("building SSLV-style geometry (elevon deflected 5 deg)...");
    let geom = sslv_geometry(5f64.to_radians());
    println!(
        "  {} triangles over 10 watertight components",
        geom.surface.ntris()
    );

    let config = CutCellConfig::around(&geom, 2.5, 3, max_level);
    println!(
        "meshing: root box {:.1}^3, levels {}..{} ...",
        config.size, config.min_level, config.max_level
    );
    let t0 = Instant::now();
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let dt = t0.elapsed().as_secs_f64();
    let (cut, inside, outside) = tree.counts();
    println!(
        "  {} leaves ({} cut, {} solid, {} flow) in {:.2} s  ->  {:.1}M cells/min",
        tree.leaves.len(),
        cut,
        inside,
        outside,
        dt,
        mesh.ncells() as f64 / dt / 1e6 * 60.0
    );
    println!(
        "  flow mesh: {} cells, {} faces, closure defect {:.2e}",
        mesh.ncells(),
        mesh.nfaces(),
        mesh.max_closure_defect()
    );

    // Multigrid hierarchy by single-pass SFC coarsening (paper Figure 11).
    println!("\nSFC coarsening hierarchy:");
    let steps = coarsen_hierarchy(&mesh, 5, 50);
    let mut fine_cells = mesh.ncells();
    for (l, s) in steps.iter().enumerate() {
        println!(
            "  level {} -> {}: {} -> {} cells (ratio {:.1})",
            l,
            l + 1,
            fine_cells,
            s.coarse.ncells(),
            s.ratio(fine_cells)
        );
        fine_cells = s.coarse.ncells();
    }

    // 16-way SFC decomposition with 2.1x cut-cell weights (Figure 12).
    println!("\n16-way Peano-Hilbert decomposition (cut cells weighted 2.1):");
    let part = partition_cells(&mesh, 16);
    let imb = part.imbalance(&mesh.weights);
    let owner: Vec<usize> = (0..mesh.ncells()).map(|c| part.owner(c)).collect();
    let cut_faces = mesh
        .faces
        .iter()
        .filter(|f| !f.is_boundary() && owner[f.a as usize] != owner[f.b as usize])
        .count();
    let interior = mesh.faces.iter().filter(|f| !f.is_boundary()).count();
    println!(
        "  weighted imbalance {:.3}; {} of {} interior faces cut ({:.1}%)",
        imb,
        cut_faces,
        interior,
        100.0 * cut_faces as f64 / interior as f64
    );
    for p in 0..16 {
        let r = part.range(p);
        let ncut = r.clone().filter(|&c| mesh.weights[c] > 1.0).count();
        print!("  p{p:<2} {:>6} cells ({ncut:>4} cut)", r.len());
        if p % 2 == 1 {
            println!();
        }
    }
}
