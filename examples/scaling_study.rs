//! The headline Columbia scaling study in one binary (condensed Figures
//! 14(b) + 16(b) + 21): measured/calibrated workloads replayed through the
//! machine model over both fabrics and both codes.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use columbia_core::PerformanceStudy;
use columbia_machine::{
    paper_cart3d_25m, paper_nsu3d_72m, Fabric, RunConfig, CART3D_CPU_COUNTS, NSU3D_CPU_COUNTS,
};

fn main() {
    println!("== NSU3D 72M-point 6-level W-cycle ==");
    let study = PerformanceStudy::new(paper_nsu3d_72m(), &NSU3D_CPU_COUNTS);
    let rows = vec![
        study.series("NUMAlink, pure MPI", |n| {
            RunConfig::mpi(n, Fabric::NumaLink4)
        }),
        study.series("NUMAlink, 2 OMP threads", |n| {
            RunConfig::hybrid(n, Fabric::NumaLink4, 2)
        }),
        study.series("InfiniBand, 2 OMP threads", |n| {
            RunConfig::hybrid(n, Fabric::InfiniBand, 2)
        }),
    ];
    print!(
        "{}",
        PerformanceStudy::format_table(&rows, &NSU3D_CPU_COUNTS)
    );
    println!(
        "paper: NUMAlink superlinear (2044 at 2008 CPUs); InfiniBand multigrid\n\
         collapses at high CPU counts.\n"
    );

    println!("== Cart3D 25M-cell SSLV 4-level W-cycle ==");
    let study = PerformanceStudy::new(paper_cart3d_25m(), &CART3D_CPU_COUNTS);
    let rows = vec![
        study.series("NUMAlink, pure MPI", |n| {
            RunConfig::mpi(n, Fabric::NumaLink4)
        }),
        study.series("InfiniBand, pure MPI", |n| {
            RunConfig::mpi(n, Fabric::InfiniBand)
        }),
    ];
    print!(
        "{}",
        PerformanceStudy::format_table(&rows, &CART3D_CPU_COUNTS)
    );
    println!(
        "paper: ~1585 at 2016 CPUs on NUMAlink; InfiniBand dips crossing the\n\
         2-node boundary at 508 CPUs and stops at the 1524-rank limit.\n"
    );

    println!("== outlook beyond 2048 CPUs (paper §VI) ==");
    // NUMAlink cannot span more than 4 nodes; InfiniBand requires hybrid
    // ranks. A 1e9-point 7-level case at 4016 CPUs:
    let mut big = paper_nsu3d_72m();
    let scale = 1.0e9 / big.levels[0].points;
    for l in big.levels.iter_mut() {
        l.points *= scale;
    }
    for ig in big.intergrid.iter_mut() {
        ig.fine_points *= scale;
    }
    let machine = columbia_machine::MachineConfig::columbia_full();
    for (label, run) in [
        (
            "1e9 pts, 2008 CPUs, NUMAlink",
            RunConfig::mpi(2008, Fabric::NumaLink4),
        ),
        (
            "1e9 pts, 4016 CPUs, InfiniBand + 4 OMP threads",
            RunConfig::hybrid(4016, Fabric::InfiniBand, 4),
        ),
    ] {
        match columbia_machine::simulate_cycle(&big, &machine, &run) {
            Ok(b) => println!(
                "{label:<48} {:>7.2} s/cycle  {:>6.2} TFLOP/s",
                b.seconds,
                b.flops_per_second() / 1e12
            ),
            Err(e) => println!("{label:<48} infeasible: {e}"),
        }
    }
    println!("paper projection: ~5-6 TFLOP/s for a 1e9-point 7-level case on 4016 CPUs.");
}
