//! Aero-performance database fill (paper §IV).
//!
//! Sweeps a configuration-space of elevon deflections against a wind-space
//! of Mach numbers and angles of attack on the SSLV-style launch-vehicle
//! stack, reusing one mesh per geometry instance and running wind cases on
//! parallel threads — the miniature version of the paper's 10^4..10^6-case
//! fills. Finishes with an on-demand "virtual database" re-run.
//!
//! ```text
//! cargo run --release --example database_fill
//! ```

use columbia_cartesian::sslv_geometry;
use columbia_core::{CartAnalysis, DatabaseFill, DatabaseSpec, ExecContext};

fn main() {
    let analysis = CartAnalysis::default().resolution(3, 6);
    let fill = DatabaseFill::new(analysis, sslv_geometry);

    let spec = DatabaseSpec {
        deflections: vec![0.0, 0.5],
        machs: vec![0.6, 1.4, 2.6],
        alphas: vec![0.0, 0.0365], // paper's SSLV case: 2.09 deg
        betas: vec![0.0],
        cycles: 20,
    };
    println!(
        "filling database: {} geometry instance(s) x {} wind cases = {} runs",
        spec.deflections.len(),
        spec.machs.len() * spec.alphas.len() * spec.betas.len(),
        spec.ncases()
    );
    let t0 = std::time::Instant::now();
    let db = fill.run(&spec, 3, &mut ExecContext::default());
    println!(
        "filled {} entries in {:.1} s\n",
        db.len(),
        t0.elapsed().as_secs_f64()
    );

    println!(
        "{:>8}{:>8}{:>8}{:>12}{:>12}{:>12}{:>8}",
        "defl", "Mach", "alpha", "Fx", "Fy", "Fz", "orders"
    );
    for e in &db {
        println!(
            "{:>8.2}{:>8.2}{:>8.3}{:>12.4}{:>12.4}{:>12.4}{:>8.1}",
            e.deflection,
            e.mach,
            e.alpha,
            e.forces.force.x,
            e.forces.force.y,
            e.forces.force.z,
            e.orders
        );
    }

    // Virtual database: re-run one case on demand instead of storing the
    // full flow field (the paper: often faster than mass storage). The
    // re-run goes through the same retry/quarantine policy as the fill;
    // case id 0 addresses any chaos plan armed on the context.
    println!("\nvirtual-database re-run of (defl 0.15, M 2.6, alpha 2.09 deg):");
    let again = fill.rerun(
        0,
        0.15,
        2.6,
        0.0365,
        0.0,
        spec.cycles,
        &mut ExecContext::default(),
    );
    println!(
        "  Fx {:+.4}  Fz {:+.4}  ({:.1} orders)",
        again.forces.force.x, again.forces.force.z, again.orders
    );
}
