//! Virtual flight (paper §I and §IV): fill an aero database with the
//! Cartesian solver, then "fly" the vehicle through it with a 6-DOF
//! integrator — the digital-flight workflow the paper's introduction
//! motivates.
//!
//! ```text
//! cargo run --release --example virtual_flight
//! ```

use columbia_cartesian::{Geometry, TriMesh};
use columbia_core::{
    AeroDatabase, CartAnalysis, DatabaseFill, DatabaseSpec, ExecContext, RigidState, SixDof,
};
use columbia_mesh::Vec3;

fn main() {
    // A finned supersonic body the coarse octree resolves well.
    let geometry = |defl: f64| {
        let body = TriMesh::body_of_revolution(
            &[
                (0.0, 0.0),
                (0.4, 0.22),
                (2.4, 0.25),
                (2.8, 0.18),
                (3.0, 0.0),
            ],
            16,
        );
        let mut fin = TriMesh::cuboid(Vec3::new(2.4, -0.05, -0.8), Vec3::new(2.8, 0.05, 0.8));
        fin.rotate(2, Vec3::new(2.6, 0.0, 0.0), defl);
        Geometry::new(&[body, fin])
    };

    println!("filling the longitudinal aero database...");
    let fill = DatabaseFill::new(CartAnalysis::default().resolution(3, 5), geometry);
    let spec = DatabaseSpec {
        deflections: vec![0.0, 0.3],
        machs: vec![1.2, 1.8, 2.4],
        alphas: vec![-0.08, 0.0, 0.08],
        betas: vec![0.0],
        cycles: 15,
    };
    let t0 = std::time::Instant::now();
    let entries = fill.run(&spec, 4, &mut ExecContext::default());
    println!(
        "  {} CFD cases in {:.1} s",
        entries.len(),
        t0.elapsed().as_secs_f64()
    );
    let db = AeroDatabase::from_entries(&entries).expect("clean fill has no quarantined entries");

    // Fly: start at Mach 2.2 with a pitch-rate disturbance and a mid-flight
    // elevon pulse (a G&C-style control input).
    let vehicle = SixDof {
        db,
        mass: 300.0,
        inertia: Vec3::new(40.0, 40.0, 40.0),
        gravity: Vec3::ZERO,
        rate_damping: Vec3::new(20.0, 20.0, 20.0),
        control: |t| if (20.0..30.0).contains(&t) { 0.3 } else { 0.0 },
    };
    let mut start = RigidState::level(2.2);
    start.omega = Vec3::new(0.0, 0.02, 0.0);

    println!("\nflying through the database (elevon pulse at t = 20..30):");
    println!(
        "{:>8}{:>10}{:>12}{:>12}{:>12}{:>10}",
        "t", "Mach", "x", "z", "alpha deg", "elevon"
    );
    let traj = vehicle.fly(start, 0.05, 1200);
    for (t, s) in traj.iter().step_by(100) {
        println!(
            "{t:>8.1}{:>10.3}{:>12.2}{:>12.2}{:>12.3}{:>10.2}",
            s.mach(),
            s.pos.x,
            s.pos.z,
            s.alpha().to_degrees(),
            (vehicle.control)(*t)
        );
    }
    let last = &traj.last().unwrap().1;
    println!(
        "\nfinal state: Mach {:.2} at ({:.1}, {:.1}, {:.1}) after {:.0} time units",
        last.mach(),
        last.pos.x,
        last.pos.y,
        last.pos.z,
        traj.last().unwrap().0
    );
    println!(
        "the same database also answers control-authority questions (e.g.\n\
         pitching-moment increments per elevon degree) without further CFD."
    );
}
