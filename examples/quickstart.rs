//! Quickstart: one high-fidelity analysis + one Cartesian analysis.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the two-package workflow of the paper's introduction in
//! miniature: NSU3D-style viscous analysis at the design point, Cart3D-style
//! inviscid analysis of the same class of configuration for fast sweeps.

use columbia_cartesian::{Geometry, TriMesh};
use columbia_core::{CartAnalysis, FlowAnalysis};

fn main() {
    // ---- High-fidelity (NSU3D-style) analysis ---------------------------
    println!("== high-fidelity RANS-style analysis (synthetic wing) ==");
    let report = FlowAnalysis::new()
        .mach(0.5)
        .alpha_deg(1.0)
        .reynolds(3.0e6)
        .mesh_points(12_000)
        .multigrid_levels(5)
        .run(40);
    println!(
        "mesh levels: {:?} (line coverage {:.0}%)",
        report.level_sizes,
        report.line_coverage * 100.0
    );
    println!(
        "converged {:.1} orders of magnitude in {} W-cycles ({:.2e} FLOPs)",
        report.history.orders_reduced(),
        report.history.cycles(),
        report.flops as f64
    );

    // ---- Automated Cartesian (Cart3D-style) analysis --------------------
    println!("\n== automated cut-cell Cartesian analysis (body of revolution) ==");
    let profile: Vec<(f64, f64)> = (0..=14)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 14.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&profile, 16)]);
    let report = CartAnalysis::default()
        .wind(2.0, 0.0349, 0.0) // Mach 2, 2 deg alpha
        .resolution(3, 5)
        .run(&geom, 30);
    println!(
        "mesh: {} cells ({} cut), generated at {:.1}M cells/min; levels {:?}",
        report.ncells,
        report.ncut,
        report.cells_per_minute / 1e6,
        report.level_sizes
    );
    println!(
        "converged {:.1} orders in {} cycles",
        report.history.orders_reduced(),
        report.history.cycles()
    );
    println!(
        "pressure force: drag {:+.4}, lift {:+.4} (z), side {:+.4} (y)",
        report.forces.force.x, report.forces.force.z, report.forces.force.y
    );
}
