//! Reproduction of *"High Resolution Aerospace Applications using the NASA
//! Columbia Supercomputer"* (Mavriplis, Aftosmis & Berger, SC 2005).
//!
//! This workspace rebuilds, from scratch in Rust, both aerodynamic
//! simulation packages the paper studies and the machinery needed to
//! regenerate its evaluation:
//!
//! * [`rans`] — NSU3D analogue: vertex-centred, six-unknown implicit flow
//!   solver with line-implicit agglomeration multigrid;
//! * [`cartesian`] + [`euler`] — Cart3D analogue: automatic cut-cell
//!   Cartesian meshing from watertight geometry and an SFC-multigrid Euler
//!   solver;
//! * [`mesh`], [`partition`], [`sfc`], [`linalg`], [`mg`] — the substrates
//!   (synthetic anisotropic meshes, a multilevel k-way partitioner,
//!   space-filling curves, block linear algebra, FAS multigrid);
//! * [`comm`] — a virtual MPI runtime (ranks as threads, packed ghost
//!   exchanges, hybrid MPI x OpenMP layouts);
//! * [`machine`] — the Columbia performance model (Itanium2 cache model,
//!   NUMAlink4 / InfiniBand fabrics, the InfiniBand MPI-connection limit);
//! * [`core`] — the user-facing API: flow analyses, aero-database fills
//!   and scaling studies.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results on every figure.

pub use columbia_cartesian as cartesian;
pub use columbia_comm as comm;
pub use columbia_core as core;
pub use columbia_euler as euler;
pub use columbia_linalg as linalg;
pub use columbia_machine as machine;
pub use columbia_mesh as mesh;
pub use columbia_mg as mg;
pub use columbia_partition as partition;
pub use columbia_rans as rans;
pub use columbia_sfc as sfc;
