//! Chaos-hardening acceptance suite for the deterministic fault layer.
//!
//! Three claims are locked in here (plus a golden-trace replay through the
//! machine model):
//!
//! 1. **Replayable chaos** — the same `(fault seed, nranks)` produces a
//!    bit-identical fault schedule, solver output and [`CommStats`] trace
//!    (including the retry counters) on every run;
//! 2. **Fills survive poison** — a database fill with an injected
//!    always-failing case completes, quarantines exactly that case, and
//!    reports it in the returned entries;
//! 3. **Collectives hide faults** — duplication, reordering and simulated
//!    drops never change the values collectives deliver.
//!
//! The CI fault matrix drives this suite over seeds and severities via
//! `COLUMBIA_FAULT_SEED` / `COLUMBIA_FAULT_SEVERITY`.

use columbia_comm::{
    run_world, CommStats, ExecContext, FaultConfig, FaultPlan, RankTrace, WorldCommSummary,
};
use columbia_core::{CartAnalysis, CaseStatus, DatabaseFill, DatabaseSpec, FillPolicy};
use columbia_machine::{fabric_fault_config, Fabric};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_rans::level::{RansLevel, SolverParams};
use columbia_rans::parallel::run_parallel_smoothing;
use columbia_rans::state::NVARS;
use columbia_rt::env;
use columbia_rt::fault::CasePlan;
use std::sync::Arc;

fn rans_mesh() -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        ni: 16,
        nj: 4,
        nk: 10,
        nk_bl: 5,
        jitter: 0.0,
        ..Default::default()
    })
}

fn rans_params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

fn state_bits(u: &[[f64; NVARS]]) -> Vec<u64> {
    u.iter().flatten().map(|v| v.to_bits()).collect()
}

fn stats_of(traces: &[RankTrace]) -> Vec<CommStats> {
    traces.iter().map(|t| t.stats.clone()).collect()
}

/// Acceptance (a): same fault seed ⇒ bit-identical solver output and
/// communication trace, retry counters included. Honors the CI matrix
/// environment knobs.
#[test]
fn same_fault_seed_is_bit_identical_across_runs() {
    let mesh = rans_mesh();
    let (seed, config) = (env::fault_seed(), env::fault_severity().config());
    let run = || {
        let plan = Arc::new(FaultPlan::new(seed, 4, config));
        run_parallel_smoothing(&mesh, rans_params(), 4, 2, &mut ExecContext::faulty(plan))
    };
    let (ua, rmsa, sa) = run();
    let (ub, rmsb, sb) = run();
    assert_eq!(state_bits(&ua), state_bits(&ub), "solver states diverged");
    assert_eq!(rmsa.to_bits(), rmsb.to_bits(), "residuals diverged");
    assert_eq!(
        stats_of(&sa),
        stats_of(&sb),
        "comm traces diverged (msg or fault counters)"
    );
    // And the payloads match the fault-free run exactly: the protocol hides
    // the injected chaos from the solver.
    let clean_plan = Arc::new(FaultPlan::fault_free(4));
    let (uc, rmsc, sc) = run_parallel_smoothing(
        &mesh,
        rans_params(),
        4,
        2,
        &mut ExecContext::faulty(clean_plan),
    );
    assert_eq!(
        state_bits(&ua),
        state_bits(&uc),
        "faults leaked into payloads"
    );
    assert_eq!(rmsa.to_bits(), rmsc.to_bits());
    assert!(sc.iter().all(|t| t.stats.faults().is_clean()));
}

/// The severe profile actually walks every fault path — and stays
/// deterministic while doing so.
#[test]
fn severe_chaos_exercises_retry_dup_and_delay_paths() {
    let mesh = rans_mesh();
    let plan = || Arc::new(FaultPlan::new(0xBAD_CAB1E, 4, FaultConfig::severe()));
    let run =
        || run_parallel_smoothing(&mesh, rans_params(), 4, 2, &mut ExecContext::faulty(plan()));
    let (ua, _, sa) = run();
    let (ub, _, sb) = run();
    assert_eq!(state_bits(&ua), state_bits(&ub));
    assert_eq!(stats_of(&sa), stats_of(&sb));
    let world = WorldCommSummary::from_ranks(&stats_of(&sa));
    assert!(
        world.faults.retries > 0,
        "no retries recorded: {:?}",
        world.faults
    );
    assert!(world.faults.dup_sent > 0, "no duplicates recorded");
    assert!(world.faults.delayed_msgs > 0, "no delays recorded");
}

/// Acceptance (b): a fill with an injected always-failing case completes,
/// quarantines exactly that case, and reports it in the entries.
#[test]
fn poisoned_fill_case_is_quarantined_and_reported() {
    let analysis = CartAnalysis::default().resolution(3, 4);
    let fill = DatabaseFill::new(analysis, |defl| {
        let mut fin = columbia_cartesian::TriMesh::cuboid(
            columbia_mesh::Vec3::new(0.1, -0.1, -0.4),
            columbia_mesh::Vec3::new(0.5, 0.1, 0.4),
        );
        fin.rotate(2, columbia_mesh::Vec3::ZERO, defl);
        columbia_cartesian::Geometry::new(&[fin])
    });
    let spec = DatabaseSpec {
        deflections: vec![0.0],
        machs: vec![0.5, 2.0],
        alphas: vec![0.0],
        betas: vec![0.0],
        cycles: 10,
    };
    let policy = FillPolicy {
        max_attempts: 3,
        chaos: Some(CasePlan::transient(1, 0.0).poison(1)), // case 1 = mach 2.0
    };
    let db = fill.run(&spec, 2, &mut ExecContext::default().with_fill(policy));
    assert_eq!(
        db.len(),
        spec.ncases(),
        "fill aborted instead of completing"
    );
    for e in &db {
        if e.mach == 2.0 {
            match &e.status {
                CaseStatus::Quarantined { attempts, reason } => {
                    assert_eq!(*attempts, 3);
                    assert!(reason.contains("injected"));
                }
                s => panic!("poisoned case not quarantined: {s:?}"),
            }
        } else {
            assert_eq!(e.status, CaseStatus::Converged, "healthy case affected");
            assert!(e.forces.force.x.is_finite());
        }
    }
}

/// Acceptance (c): collectives converge to the fault-free answer under
/// heavy duplication and reordering (and simulated drops).
#[test]
fn collectives_converge_under_duplication_and_reordering() {
    let workload = |plan: Option<Arc<FaultPlan>>| -> Vec<(f64, CommStats)> {
        let ctx = ExecContext::default().with_faults(plan);
        run_world(5, &ctx, |rank| {
            let r = rank.rank() as f64;
            let mut acc = rank.allreduce_sum(r * 1.25 + 0.5);
            acc += rank.allreduce_max(acc * (r + 1.0));
            rank.barrier();
            acc += rank.allreduce_sum(1.0 / (r + 1.0));
            (acc, rank.take_stats())
        })
        .0
    };
    let clean = workload(None);
    let cfg = FaultConfig {
        dup_rate: 0.9,
        max_dups: 3,
        delay_rate: 0.7,
        max_delay_slots: 4,
        drop_rate: 0.4,
        max_retries: 3,
        ..FaultConfig::fault_free()
    };
    for seed in [1u64, 42, 0xD00F] {
        let chaotic = workload(Some(Arc::new(FaultPlan::new(seed, 5, cfg))));
        for ((vc, sc), (vf, sf)) in clean.iter().zip(&chaotic) {
            assert_eq!(
                vc.to_bits(),
                vf.to_bits(),
                "collective result changed under chaos (seed {seed})"
            );
            // Same message/byte ledger as the clean run: injected copies
            // and retries are accounted separately in the fault counters.
            assert_eq!(sf.total_msgs(), sc.total_msgs());
            assert_eq!(sf.total_bytes(), sc.total_bytes());
        }
        let world = WorldCommSummary::from_ranks(
            &chaotic.iter().map(|(_, s)| s.clone()).collect::<Vec<_>>(),
        );
        assert!(world.faults.dup_sent > 0 && world.faults.delayed_msgs > 0);
    }
}

/// Satellite: golden-trace replay. A recorded chaos `CommStats` snapshot,
/// replayed through the interconnect model, must preserve the paper's
/// fabric ranking — NUMAlink prices below InfiniBand below 10GigE — with
/// and without the injected delay faults, and the fault term must cost
/// extra time on every fabric.
#[test]
fn golden_trace_fabric_ranking_holds_under_delay_faults() {
    // Record the trace under the InfiniBand-derived severity (the machine
    // layer supplies the fault profile; the comm layer executes it).
    let config = fabric_fault_config(Fabric::InfiniBand, 4);
    assert!(config.delay_rate > 0.0, "IB severity must inject delays");
    let plan = Arc::new(FaultPlan::new(0x90_1D, 4, config));
    let stats = run_world(4, &ExecContext::faulty(plan), |rank| {
        let n = rank.nranks();
        let me = rank.rank();
        for round in 0..8u64 {
            rank.send((me + 1) % n, round, vec![me as f64; 16]);
            rank.recv((me + n - 1) % n, round);
        }
        rank.allreduce_sum(me as f64);
        rank.take_stats()
    })
    .0;
    let world = WorldCommSummary::from_ranks(&stats);
    assert!(
        world.faults.delayed_msgs > 0,
        "trace recorded no delay faults"
    );

    // Replay: price the measured per-rank maxima on each fabric at span 4;
    // each injected delay slot stalls the wire for one extra latency.
    let span = 4;
    let price = |fabric: Fabric, with_faults: bool| -> f64 {
        let lat = fabric.latency(span);
        let bw = fabric.bandwidth(span);
        let base = world.max_msgs_per_rank as f64 * lat + world.max_bytes_per_rank as f64 / bw;
        let fault_term = if with_faults {
            (world.faults.delay_slots + world.faults.retries) as f64 * lat
        } else {
            0.0
        };
        base + fault_term
    };
    for faulty in [false, true] {
        let nl = price(Fabric::NumaLink4, faulty);
        let ib = price(Fabric::InfiniBand, faulty);
        let ge = price(Fabric::TenGigE, faulty);
        assert!(
            nl < ib && ib < ge,
            "fabric ranking broken (faults={faulty}): NL {nl} IB {ib} GE {ge}"
        );
    }
    for fabric in [Fabric::NumaLink4, Fabric::InfiniBand, Fabric::TenGigE] {
        assert!(
            price(fabric, true) > price(fabric, false),
            "injected delays must cost wall-clock on {fabric:?}"
        );
    }
}

columbia_rt::props! {
    config: columbia_rt::props::Config::with_cases(12);

    /// Any seed with every fault rate at zero reproduces the fault-free
    /// comm trace exactly — the plan machinery itself is free of side
    /// effects.
    fn prop_zero_rate_plan_reproduces_fault_free_trace(seed in 0u64..u64::MAX) {
        let workload = |plan: Option<Arc<FaultPlan>>| {
            let ctx = ExecContext::default().with_faults(plan);
            run_world(3, &ctx, |rank| {
                let n = rank.nranks();
                let me = rank.rank();
                rank.send((me + 1) % n, 9, vec![me as f64, 2.0 * me as f64]);
                let got = rank.recv((me + n - 1) % n, 9);
                let s = rank.allreduce_sum(got[0] + got[1]);
                rank.barrier();
                (s, rank.take_stats())
            })
            .0
        };
        let clean = workload(None);
        let gated = workload(Some(Arc::new(FaultPlan::new(seed, 3, FaultConfig::fault_free()))));
        for ((vc, sc), (vg, sg)) in clean.iter().zip(&gated) {
            assert_eq!(vc.to_bits(), vg.to_bits());
            assert_eq!(sc, sg, "zero-rate plan perturbed the trace (seed {seed})");
        }
    }
}

// Re-exercise the serial RANS reference here so the suite stays honest if
// the parallel driver's fault-free path ever drifts from the serial kernel.
#[test]
fn default_context_driver_matches_serial_reference() {
    let mesh = rans_mesh();
    let mut serial = RansLevel::new(mesh.clone(), rans_params());
    serial.apply_bcs();
    for _ in 0..2 {
        serial.smooth_sweep();
    }
    let (u, _, traces) =
        run_parallel_smoothing(&mesh, rans_params(), 4, 2, &mut ExecContext::default());
    let mut max_diff = 0.0f64;
    for (v, su) in serial.u.to_aos().iter().enumerate() {
        for k in 0..NVARS {
            max_diff = max_diff.max((u[v][k] - su[k]).abs());
        }
    }
    assert!(max_diff < 1e-8, "no-plan driver diverged: {max_diff}");
    assert!(traces.iter().all(|t| t.stats.faults().is_clean()));
}
