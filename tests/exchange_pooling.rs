//! The pooled/coalesced halo-exchange path: equivalence with the seed
//! per-field implementation, and the zero-allocation steady state.
//!
//! The buffer pool and the packed schedules may change *how* payloads move
//! — recycled allocations, one coalesced message per peer — but never a
//! single bit of *what* arrives. These tests pin both properties:
//!
//! * pooled `exchange_copy`/`exchange_add`/`exchange_add2` produce results
//!   bit-identical to the seed `_ref` paths for random decompositions at
//!   2/4/8 ranks, with and without an active fault plan;
//! * after one warm-up cycle the pool-miss counter stays at zero — the
//!   steady-state exchange performs no payload allocations — for a
//!   mixed-width comm workload, the RANS smoothing sweep, and full
//!   multigrid cycles.

use columbia_comm::{
    decompose, run_ranks, run_world, Decomposition, ExecContext, FaultConfig, FaultPlan, Rank,
};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_mg::CycleParams;
use columbia_rans::level::SolverParams;
use columbia_rans::parallel::{
    build_local_levels, parallel_sweep, partition_mesh_line_aware, LocalLevel,
};
use columbia_rans::parallel_mg::ParallelMg;
use columbia_rt::rng::Pcg32;
use std::sync::{Arc, Mutex};

/// Random grid decomposition: an `nx x ny` grid graph with a seeded random
/// partition (every rank guaranteed at least one vertex).
fn random_decomp(seed: u64, nx: usize, ny: usize, nparts: usize) -> Decomposition {
    let n = nx * ny;
    let id = |x: usize, y: usize| (x + nx * y) as u32;
    let mut edges = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < ny {
                edges.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    let mut rng = Pcg32::seed_from_u64(seed);
    let part: Vec<u32> = (0..n)
        .map(|v| {
            if v < nparts {
                v as u32
            } else {
                rng.gen_below(nparts as u64) as u32
            }
        })
        .collect();
    decompose(n, &part, nparts, &edges)
}

/// Deterministic per-vertex field values derived from the global id.
fn seed_fields(decomp: &Decomposition, p: usize) -> (Vec<[f64; 3]>, Vec<[f64; 2]>) {
    let l2g = &decomp.local_to_global[p];
    let a = l2g
        .iter()
        .map(|&g| [g as f64 + 0.25, 2.0 * g as f64 - 1.5, 0.125 * g as f64])
        .collect();
    let b = l2g
        .iter()
        .map(|&g| [3.0 * g as f64 + 0.5, g as f64 * g as f64 * 1e-3])
        .collect();
    (a, b)
}

/// Three cycles of mixed adds/copies over both fields; `pooled` selects
/// the pooled/coalesced path or the seed `_ref` per-field path.
fn exchange_workload(
    decomp: &Decomposition,
    rank: &mut Rank,
    pooled: bool,
    cycles: usize,
) -> Vec<u64> {
    let p = rank.rank();
    let plan = &decomp.plans[p];
    let (mut a, mut b) = seed_fields(decomp, p);
    for c in 0..cycles as u64 {
        let base = 10 * c;
        if pooled {
            plan.exchange_add::<3>(rank, base, &mut a);
            plan.exchange_copy::<3>(rank, base + 1, &mut a);
            plan.exchange_add2::<3, 2>(rank, base + 2, &mut a, &mut b);
            plan.exchange_copy2::<3, 2>(rank, base + 3, &mut a, &mut b);
        } else {
            plan.exchange_add_ref::<3>(rank, base, &mut a);
            plan.exchange_copy_ref::<3>(rank, base + 1, &mut a);
            plan.exchange_add_ref::<3>(rank, base + 2, &mut a);
            plan.exchange_add_ref::<2>(rank, base + 4, &mut b);
            plan.exchange_copy_ref::<3>(rank, base + 5, &mut a);
            plan.exchange_copy_ref::<2>(rank, base + 3, &mut b);
        }
    }
    let mut bits = Vec::with_capacity(a.len() * 5);
    bits.extend(a.iter().flatten().map(|v| v.to_bits()));
    bits.extend(b.iter().flatten().map(|v| v.to_bits()));
    bits
}

fn chaos_plan(seed: u64, nranks: usize) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::new(
        seed,
        nranks,
        FaultConfig {
            dup_rate: 0.6,
            max_dups: 3,
            delay_rate: 0.5,
            max_delay_slots: 4,
            ..FaultConfig::fault_free()
        },
    ))
}

columbia_rt::props! {
    config: columbia_rt::props::Config::with_cases(12);

    /// Pooled + coalesced exchanges deliver bit-identical fields to the
    /// seed per-field path for random decompositions, clean or faulty.
    fn prop_pooled_exchange_matches_seed_path(seed in 0u64..u64::MAX) {
        for nparts in [2usize, 4, 8] {
            let decomp = Arc::new(random_decomp(seed, 10, 8, nparts));
            let run = |pooled: bool, plan: Option<Arc<FaultPlan>>| {
                let d = Arc::clone(&decomp);
                let ctx = ExecContext::default().with_faults(plan);
                run_world(nparts, &ctx, move |rank| {
                    exchange_workload(&d, rank, pooled, 3)
                })
                .0
            };
            let reference = run(false, None);
            let pooled_clean = run(true, None);
            let pooled_chaos = run(true, Some(chaos_plan(seed ^ 0x5EED, nparts)));
            assert_eq!(
                reference, pooled_clean,
                "seed {seed}: pooled exchange diverged at {nparts} ranks"
            );
            assert_eq!(
                reference, pooled_chaos,
                "seed {seed}: faulted pooled exchange diverged at {nparts} ranks"
            );
        }
    }
}

#[test]
fn pool_misses_stop_after_first_cycle_in_mixed_workload() {
    // Mixed widths, coalesced messages, and an active dup/delay fault plan:
    // after the warm-up cycle every payload comes from the pool.
    let nparts = 4;
    let decomp = Arc::new(random_decomp(99, 12, 9, nparts));
    let plan = chaos_plan(1234, nparts);
    let per_cycle = run_world(nparts, &ExecContext::faulty(plan), |rank| {
        let p = rank.rank();
        let plan = &decomp.plans[p];
        let (mut a, mut b) = seed_fields(&decomp, p);
        let mut stats_per_cycle = Vec::new();
        for c in 0..5u64 {
            let base = 10 * c;
            plan.exchange_add::<3>(rank, base, &mut a);
            plan.exchange_copy::<3>(rank, base + 1, &mut a);
            plan.exchange_add2::<3, 2>(rank, base + 2, &mut a, &mut b);
            plan.exchange_copy::<2>(rank, base + 3, &mut b);
            stats_per_cycle.push(rank.take_stats());
        }
        stats_per_cycle
    })
    .0;
    for (r, cycles) in per_cycle.iter().enumerate() {
        let warm = cycles[0].pool();
        if decomp.plans[r].degree() > 0 {
            assert!(warm.misses > 0, "rank {r}: warm-up cycle must allocate");
            assert!(warm.coalesced_msgs > 0, "rank {r}: add2 must coalesce");
        }
        for (c, s) in cycles.iter().enumerate().skip(1) {
            assert_eq!(
                s.pool().misses,
                0,
                "rank {r} cycle {c}: steady-state exchange allocated"
            );
            if decomp.plans[r].degree() > 0 {
                assert!(s.pool().hits > 0, "rank {r} cycle {c}: pool unused");
                assert_eq!(
                    s.pool().recycled,
                    s.pool().hits,
                    "rank {r} cycle {c}: steady state must conserve buffers"
                );
            }
        }
    }
}

fn small_wing() -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        ni: 16,
        nj: 4,
        nk: 10,
        nk_bl: 5,
        jitter: 0.0,
        ..Default::default()
    })
}

fn rans_params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

#[test]
fn rans_sweep_reaches_zero_alloc_steady_state() {
    // The real smoothing sweep: gradients (9-wide), coalesced residual +
    // diagonal (6+37), diagonal copy (37), state copy (6). From the second
    // sweep on, the pool serves every payload.
    let m = small_wing();
    let nparts = 4;
    let part = partition_mesh_line_aware(&m, nparts, rans_params().line_threshold);
    let (decomp, locals) = build_local_levels(&m, &part, nparts, rans_params());
    let locals = Mutex::new(
        locals
            .into_iter()
            .map(Some)
            .collect::<Vec<Option<LocalLevel>>>(),
    );
    let per_cycle = run_ranks(nparts, |rank| {
        let mut local = locals.lock().unwrap()[rank.rank()]
            .take()
            .expect("local level already taken");
        local.level.apply_bcs();
        decomp.plans[rank.rank()].exchange_copy_field(rank, 1, &mut local.level.u);
        let mut stats_per_cycle = Vec::new();
        for _ in 0..4 {
            parallel_sweep(&mut local, &decomp, rank);
            stats_per_cycle.push(rank.take_stats());
        }
        stats_per_cycle
    });
    for (r, cycles) in per_cycle.iter().enumerate() {
        assert!(
            cycles[0].pool().hits > 0,
            "rank {r}: sweep never hit the pool"
        );
        for (c, s) in cycles.iter().enumerate().skip(1) {
            assert_eq!(
                s.pool().misses,
                0,
                "rank {r} sweep {c}: steady-state sweep allocated a payload"
            );
            assert!(s.pool().hits > 0, "rank {r} sweep {c}: pool unused");
            assert!(
                s.pool().coalesced_msgs > 0,
                "rank {r} sweep {c}: no coalescing"
            );
        }
    }
}

#[test]
fn multigrid_cycles_allocate_only_during_warmup() {
    // Acceptance criterion, verbatim: the pool-miss counter is zero from
    // the second multigrid cycle onward. Misses are deterministic, so the
    // total after k >= 1 cycles must equal the total after 1 cycle — every
    // restriction, prolongation and sweep on every level is served from
    // buffers recycled during the first cycle.
    let m = small_wing();
    let cp = CycleParams::default();
    let run = |cycles: usize| {
        let pmg = ParallelMg::new(&m, rans_params(), 3, 3);
        let (_, traces) = pmg.solve(&cp, 4.0, cycles, &mut ExecContext::default());
        traces
    };
    let one = run(1);
    let three = run(3);
    for (r, (t1, t3)) in one.iter().zip(&three).enumerate() {
        assert_eq!(
            t1.stats.pool().misses,
            t3.stats.pool().misses,
            "rank {r}: multigrid cycles 2-3 allocated payload buffers"
        );
        assert!(
            t3.stats.pool().hits > t1.stats.pool().hits,
            "rank {r}: later cycles must reuse pooled buffers"
        );
    }
}
