//! Bit-exact repeatability of every seeded generator entry point.
//!
//! The whole point of the in-tree `columbia-rt` runtime is that two runs of
//! the same binary — or the same run on another machine — produce identical
//! artifacts. These tests lock that in at the public-API level: same seed
//! means identical output down to the last bit, different seed means a
//! different (but equally valid) artifact.

use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_partition::{graph::grid_graph, partition_graph, PartitionConfig};

fn mesh_fingerprint(m: &columbia_mesh::UnstructuredMesh) -> Vec<u64> {
    // Bit-exact digest: every coordinate, volume and wall distance as raw
    // IEEE-754 bits plus the edge connectivity.
    let mut bits = Vec::new();
    for p in &m.points {
        bits.extend([p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]);
    }
    bits.extend(m.volumes.iter().map(|v| v.to_bits()));
    bits.extend(m.wall_distance.iter().map(|v| v.to_bits()));
    for e in &m.edges {
        bits.extend([e.a as u64, e.b as u64]);
        bits.extend([
            e.normal.x.to_bits(),
            e.normal.y.to_bits(),
            e.normal.z.to_bits(),
        ]);
    }
    bits
}

#[test]
fn wing_mesh_is_bit_identical_across_runs() {
    let spec = WingMeshSpec {
        jitter: 0.05,
        seed: 42,
        ..WingMeshSpec::with_target_points(4_000)
    };
    let a = wing_mesh(&spec);
    let b = wing_mesh(&spec);
    assert_eq!(
        mesh_fingerprint(&a),
        mesh_fingerprint(&b),
        "same spec + same seed must reproduce the mesh bit-for-bit"
    );
}

#[test]
fn wing_mesh_seed_actually_steers_the_jitter() {
    let base = WingMeshSpec {
        jitter: 0.05,
        seed: 1,
        ..WingMeshSpec::with_target_points(4_000)
    };
    let other = WingMeshSpec { seed: 2, ..base };
    let a = wing_mesh(&base);
    let b = wing_mesh(&other);
    assert_eq!(a.nvertices(), b.nvertices());
    assert_ne!(
        mesh_fingerprint(&a),
        mesh_fingerprint(&b),
        "different seeds must move the jittered points"
    );
}

#[test]
fn unjittered_mesh_ignores_the_seed() {
    let a = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        seed: 7,
        ..WingMeshSpec::with_target_points(4_000)
    });
    let b = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        seed: 8,
        ..WingMeshSpec::with_target_points(4_000)
    });
    assert_eq!(mesh_fingerprint(&a), mesh_fingerprint(&b));
}

#[test]
fn kway_partition_is_bit_identical_across_runs() {
    let g = grid_graph(20, 20, 4);
    let config = PartitionConfig::default();
    for k in [2usize, 7, 16] {
        let a = partition_graph(&g, k, &config);
        let b = partition_graph(&g, k, &config);
        assert_eq!(a, b, "k={k} must be deterministic for a fixed seed");
    }
}

#[test]
fn kway_partition_seed_changes_the_matching_order() {
    let g = grid_graph(20, 20, 4);
    let a = partition_graph(&g, 8, &PartitionConfig::default());
    let b = partition_graph(
        &g,
        8,
        &PartitionConfig {
            seed: 0xDECAF,
            ..PartitionConfig::default()
        },
    );
    // Both must be valid 8-way partitions; the different matching order
    // virtually always yields a different labelling.
    assert_eq!(a.len(), b.len());
    assert!(a.iter().all(|&p| p < 8) && b.iter().all(|&p| p < 8));
    assert_ne!(a, b, "different seeds should explore different matchings");
}

#[test]
fn rt_prng_stream_is_stable_across_platforms() {
    // Golden values: if these change, every seeded artifact in the repo
    // changes. Bump them only with a deliberate, documented break.
    use columbia_rt::Pcg32;
    let mut r = Pcg32::seed_from_u64(0);
    let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
    let mut r2 = Pcg32::seed_from_u64(0);
    let again: Vec<u32> = (0..4).map(|_| r2.next_u32()).collect();
    assert_eq!(first, again);
    let mut r3 = Pcg32::seed_from_u64(1);
    assert_ne!(first[0], r3.next_u32());
}
