//! Bit-exact repeatability of every seeded generator entry point.
//!
//! The whole point of the in-tree `columbia-rt` runtime is that two runs of
//! the same binary — or the same run on another machine — produce identical
//! artifacts. These tests lock that in at the public-API level: same seed
//! means identical output down to the last bit, different seed means a
//! different (but equally valid) artifact.

use columbia_comm::{run_world, ExecContext, FaultConfig, FaultPlan};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_partition::{graph::grid_graph, partition_graph, PartitionConfig};
use std::sync::Arc;

/// Decomposition widths for the serial-parity tests: 2 and 4 ranks always,
/// 8 ranks only under `COLUMBIA_SLOW_TESTS=1` (set in CI) — the widest
/// world triples the thread pressure on a small test machine without
/// exercising any new code path.
fn parity_widths() -> &'static [usize] {
    let slow = columbia_rt::env::slow_tests();
    if slow {
        &[2, 4, 8]
    } else {
        &[2, 4]
    }
}

fn mesh_fingerprint(m: &columbia_mesh::UnstructuredMesh) -> Vec<u64> {
    // Bit-exact digest: every coordinate, volume and wall distance as raw
    // IEEE-754 bits plus the edge connectivity.
    let mut bits = Vec::new();
    for p in &m.points {
        bits.extend([p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]);
    }
    bits.extend(m.volumes.iter().map(|v| v.to_bits()));
    bits.extend(m.wall_distance.iter().map(|v| v.to_bits()));
    for e in &m.edges {
        bits.extend([e.a as u64, e.b as u64]);
        bits.extend([
            e.normal.x.to_bits(),
            e.normal.y.to_bits(),
            e.normal.z.to_bits(),
        ]);
    }
    bits
}

#[test]
fn wing_mesh_is_bit_identical_across_runs() {
    let spec = WingMeshSpec {
        jitter: 0.05,
        seed: 42,
        ..WingMeshSpec::with_target_points(4_000)
    };
    let a = wing_mesh(&spec);
    let b = wing_mesh(&spec);
    assert_eq!(
        mesh_fingerprint(&a),
        mesh_fingerprint(&b),
        "same spec + same seed must reproduce the mesh bit-for-bit"
    );
}

#[test]
fn wing_mesh_seed_actually_steers_the_jitter() {
    let base = WingMeshSpec {
        jitter: 0.05,
        seed: 1,
        ..WingMeshSpec::with_target_points(4_000)
    };
    let other = WingMeshSpec { seed: 2, ..base };
    let a = wing_mesh(&base);
    let b = wing_mesh(&other);
    assert_eq!(a.nvertices(), b.nvertices());
    assert_ne!(
        mesh_fingerprint(&a),
        mesh_fingerprint(&b),
        "different seeds must move the jittered points"
    );
}

#[test]
fn unjittered_mesh_ignores_the_seed() {
    let a = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        seed: 7,
        ..WingMeshSpec::with_target_points(4_000)
    });
    let b = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        seed: 8,
        ..WingMeshSpec::with_target_points(4_000)
    });
    assert_eq!(mesh_fingerprint(&a), mesh_fingerprint(&b));
}

#[test]
fn kway_partition_is_bit_identical_across_runs() {
    let g = grid_graph(20, 20, 4);
    let config = PartitionConfig::default();
    for k in [2usize, 7, 16] {
        let a = partition_graph(&g, k, &config);
        let b = partition_graph(&g, k, &config);
        assert_eq!(a, b, "k={k} must be deterministic for a fixed seed");
    }
}

#[test]
fn kway_partition_seed_changes_the_matching_order() {
    let g = grid_graph(20, 20, 4);
    let a = partition_graph(&g, 8, &PartitionConfig::default());
    let b = partition_graph(
        &g,
        8,
        &PartitionConfig {
            seed: 0xDECAF,
            ..PartitionConfig::default()
        },
    );
    // Both must be valid 8-way partitions; the different matching order
    // virtually always yields a different labelling.
    assert_eq!(a.len(), b.len());
    assert!(a.iter().all(|&p| p < 8) && b.iter().all(|&p| p < 8));
    assert_ne!(a, b, "different seeds should explore different matchings");
}

/// Parallel RANS under an explicit zero-fault plan matches the serial
/// kernel at every [`parity_widths`] rank count — the fault plumbing adds
/// nothing when every rate is zero, at any decomposition width.
#[test]
fn rans_parallel_matches_serial_under_zero_fault_plan() {
    use columbia_rans::level::{RansLevel, SolverParams};
    use columbia_rans::parallel::run_parallel_smoothing;
    use columbia_rans::state::NVARS;

    let m = wing_mesh(&WingMeshSpec {
        ni: 16,
        nj: 4,
        nk: 10,
        nk_bl: 5,
        jitter: 0.0,
        ..Default::default()
    });
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    let mut serial = RansLevel::new(m.clone(), params);
    serial.apply_bcs();
    for _ in 0..3 {
        serial.smooth_sweep();
    }
    let serial_rms = serial.residual_rms();

    for &nparts in parity_widths() {
        let plan = Arc::new(FaultPlan::fault_free(nparts));
        let (u, rms, traces) =
            run_parallel_smoothing(&m, params, nparts, 3, &mut ExecContext::faulty(plan));
        let mut max_diff = 0.0f64;
        for (v, su) in serial.u.to_aos().iter().enumerate() {
            for k in 0..NVARS {
                max_diff = max_diff.max((u[v][k] - su[k]).abs());
            }
        }
        assert!(max_diff < 1e-8, "{nparts}-way RANS diverged: {max_diff}");
        assert!((rms - serial_rms).abs() < 1e-10 * (1.0 + serial_rms));
        assert!(traces.iter().all(|t| t.stats.faults().is_clean()));

        // And the parallel run itself is bitwise repeatable.
        let plan = Arc::new(FaultPlan::fault_free(nparts));
        let (u2, rms2, traces2) =
            run_parallel_smoothing(&m, params, nparts, 3, &mut ExecContext::faulty(plan));
        let bits =
            |u: &[[f64; NVARS]]| -> Vec<u64> { u.iter().flatten().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&u), bits(&u2), "{nparts}-way RANS not repeatable");
        assert_eq!(rms.to_bits(), rms2.to_bits());
        let stats = |ts: &[columbia_comm::RankTrace]| -> Vec<columbia_comm::CommStats> {
            ts.iter().map(|t| t.stats.clone()).collect()
        };
        assert_eq!(stats(&traces), stats(&traces2));
    }
}

/// Same contract for the Cartesian Euler solver at every parity width.
#[test]
fn euler_parallel_matches_serial_under_zero_fault_plan() {
    use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_euler::level::EulerLevel;
    use columbia_euler::parallel::run_parallel_smoothing;
    use columbia_euler::state::{freestream5, NVARS5};
    use columbia_mesh::Vec3;
    use columbia_sfc::CurveKind;

    let prof: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 10.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 10)]);
    let config = CutCellConfig {
        min_level: 3,
        max_level: 4,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);

    let fs = freestream5(0.5, 0.0, 0.0);
    let mut serial = EulerLevel::new(mesh.clone(), fs, 1.5);
    for _ in 0..3 {
        serial.rk_step();
    }
    let serial_rms = serial.residual_rms();

    for &nparts in parity_widths() {
        let plan = Arc::new(FaultPlan::fault_free(nparts));
        let (u, rms, traces) =
            run_parallel_smoothing(&mesh, fs, 1.5, nparts, 3, &mut ExecContext::faulty(plan));
        let mut max_diff = 0.0f64;
        for (c, su) in serial.u.to_aos().iter().enumerate() {
            for k in 0..NVARS5 {
                max_diff = max_diff.max((u[c][k] - su[k]).abs());
            }
        }
        assert!(max_diff < 1e-9, "{nparts}-way Euler diverged: {max_diff}");
        assert!((rms - serial_rms).abs() < 1e-10 * (1.0 + serial_rms));
        assert!(traces.iter().all(|t| t.stats.faults().is_clean()));
    }
}

columbia_rt::props! {
    config: columbia_rt::props::Config::with_cases(16);

    /// A plan whose rates are all zero is indistinguishable from no plan
    /// at all, whatever its seed: the fault layer's zero-overhead path is
    /// genuinely zero-effect.
    fn prop_zero_rate_plan_is_inert_for_any_seed(seed in 0u64..u64::MAX, nranks in 2usize..6) {
        let workload = |plan: Option<Arc<FaultPlan>>| {
            let ctx = ExecContext::default().with_faults(plan);
            run_world(nranks, &ctx, |rank| {
                let n = rank.nranks();
                let me = rank.rank();
                rank.send((me + 1) % n, 3, vec![me as f64 + 0.25]);
                let got = rank.recv((me + n - 1) % n, 3)[0];
                let total = rank.allreduce_sum(got);
                rank.barrier();
                (total, rank.take_stats())
            })
            .0
        };
        let clean = workload(None);
        let planned = workload(Some(Arc::new(FaultPlan::new(
            seed,
            nranks,
            FaultConfig::fault_free(),
        ))));
        for ((vc, sc), (vp, sp)) in clean.iter().zip(&planned) {
            assert_eq!(vc.to_bits(), vp.to_bits(), "seed {seed} changed a payload");
            assert_eq!(sc, sp, "seed {seed} changed the comm trace");
        }
    }
}

#[test]
fn rt_prng_stream_is_stable_across_platforms() {
    // Golden values: if these change, every seeded artifact in the repo
    // changes. Bump them only with a deliberate, documented break.
    use columbia_rt::Pcg32;
    let mut r = Pcg32::seed_from_u64(0);
    let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
    let mut r2 = Pcg32::seed_from_u64(0);
    let again: Vec<u32> = (0..4).map(|_| r2.next_u32()).collect();
    assert_eq!(first, again);
    let mut r3 = Pcg32::seed_from_u64(1);
    assert_ne!(first[0], r3.next_u32());
}
