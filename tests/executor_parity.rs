//! Thread-vs-event executor parity suite.
//!
//! The event executor's whole claim is *bit-identity*: any deterministic
//! serial schedule of the rank programs must produce the same payload
//! bits, `CommStats` counters and trace JSON as the kernel-scheduled
//! thread backend, because the comm protocol makes all three functions of
//! the logical program order, never of the interleaving. These tests pin
//! that claim with FNV-1a digests at 2/4 ranks (8 under
//! `COLUMBIA_SLOW_TESTS`), clean and under seeded fault-plan chaos.

use columbia_comm::workload::HaloWorkload;
use columbia_comm::{
    run_world, CommStats, ExecContext, Executor, FaultConfig, FaultPlan, RankTrace,
};
use columbia_mesh::{wing_mesh, WingMeshSpec};
use columbia_rans::level::SolverParams;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn digest_f64s<'a>(vals: impl Iterator<Item = &'a f64>) -> u64 {
    let mut h = FNV_OFFSET;
    for v in vals {
        h = fnv_u64(h, v.to_bits());
    }
    h
}

fn digest_stats(stats: &[CommStats]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in stats {
        for (name, v) in s.counter_pairs() {
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h = fnv_u64(h, v);
        }
        for (peer, msgs, bytes) in s.peers() {
            h = fnv_u64(h, peer as u64);
            h = fnv_u64(h, msgs);
            h = fnv_u64(h, bytes);
        }
    }
    h
}

fn digest_traces(traces: &[RankTrace]) -> u64 {
    let mut h = digest_stats(&traces.iter().map(|t| t.stats.clone()).collect::<Vec<_>>());
    for t in traces {
        for (&level, s) in &t.per_level {
            h = fnv_u64(h, level as u64);
            h = fnv_u64(h, digest_stats(std::slice::from_ref(s)));
        }
    }
    h
}

/// 2 and 4 ranks always; 8 only under `COLUMBIA_SLOW_TESTS` (CI).
fn parity_widths() -> &'static [usize] {
    if columbia_rt::env::slow_tests() {
        &[2, 4, 8]
    } else {
        &[2, 4]
    }
}

/// The four chaos seeds of the fault matrix leg.
const CHAOS_SEEDS: [u64; 4] = [0xC0FFEE, 1, 0xBADC0DE, 0x5EED_2016];

fn rans_mesh() -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        ni: 16,
        nj: 4,
        nk: 10,
        nk_bl: 5,
        jitter: 0.0,
        ..Default::default()
    })
}

/// Raw comm chaos workload: ring traffic on two alternating tags,
/// an allreduce, a barrier, per-level attribution. Returns payload-ish
/// values plus the full teardown ledgers.
fn chaos_world(
    nranks: usize,
    plan: Option<Arc<FaultPlan>>,
    exec: Executor,
) -> (Vec<f64>, Vec<RankTrace>) {
    let ctx = ExecContext::default().with_faults(plan).with_executor(exec);
    run_world(nranks, &ctx, |rank| {
        let r = rank.rank();
        let n = rank.nranks();
        let next = (r + 1) % n;
        let prev = (r + n - 1) % n;
        let mut acc = 0.0;
        for round in 0..6u64 {
            rank.enter_level((round % 3) as usize);
            rank.send(next, 7 + round % 2, vec![r as f64, round as f64]);
            let got = rank.recv(prev, 7 + round % 2);
            acc += got[0] * (round + 1) as f64 + got[1];
            rank.exit_level();
        }
        acc += rank.allreduce_sum(acc);
        rank.barrier();
        acc += rank.allreduce_max(r as f64);
        acc
    })
}

#[test]
fn chaos_comm_parity_clean_and_over_four_seeds() {
    for &n in parity_widths() {
        let mut plans: Vec<Option<Arc<FaultPlan>>> = vec![None];
        for seed in CHAOS_SEEDS {
            plans.push(Some(Arc::new(FaultPlan::new(
                seed,
                n,
                FaultConfig::severe(),
            ))));
        }
        for plan in plans {
            let label = match &plan {
                None => "clean".to_string(),
                Some(p) => format!("seed 0x{:x}", p.seed()),
            };
            let (tv, tt) = chaos_world(n, plan.clone(), Executor::Threads);
            let (ev, et) = chaos_world(n, plan, Executor::Events);
            assert_eq!(
                digest_f64s(tv.iter()),
                digest_f64s(ev.iter()),
                "payload digest diverged at n={n} ({label})"
            );
            assert_eq!(
                digest_traces(&tt),
                digest_traces(&et),
                "CommStats digest diverged at n={n} ({label})"
            );
        }
    }
}

#[test]
fn rans_solver_parity_across_executors() {
    let m = rans_mesh();
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    for &n in parity_widths() {
        for plan in [
            None,
            Some(Arc::new(FaultPlan::new(
                CHAOS_SEEDS[0],
                n,
                FaultConfig::severe(),
            ))),
        ] {
            let run = |exec: Executor| {
                let mut ctx = ExecContext::default()
                    .with_faults(plan.clone())
                    .with_executor(exec);
                columbia_rans::parallel::run_parallel_smoothing(&m, params, n, 3, &mut ctx)
            };
            let (tu, trms, tt) = run(Executor::Threads);
            let (eu, erms, et) = run(Executor::Events);
            assert_eq!(
                digest_f64s(tu.iter().flatten()),
                digest_f64s(eu.iter().flatten()),
                "RANS state digest diverged at n={n}"
            );
            assert_eq!(trms.to_bits(), erms.to_bits(), "RANS rms diverged at n={n}");
            assert_eq!(
                digest_traces(&tt),
                digest_traces(&et),
                "RANS stats digest diverged at n={n}"
            );
        }
    }
}

#[test]
fn trace_json_is_byte_identical_across_executors() {
    let m = rans_mesh();
    let params = SolverParams {
        mach: 0.5,
        ..Default::default()
    };
    let run = |exec: Executor, plan: Option<Arc<FaultPlan>>| {
        let mut ctx = ExecContext::traced().with_faults(plan).with_executor(exec);
        let _ = columbia_rans::parallel::run_parallel_smoothing(&m, params, 2, 3, &mut ctx);
        ctx.finish_trace().to_json().render()
    };
    for plan in [
        None,
        Some(Arc::new(FaultPlan::new(
            CHAOS_SEEDS[1],
            2,
            FaultConfig::severe(),
        ))),
    ] {
        let t = run(Executor::Threads, plan.clone());
        let e = run(Executor::Events, plan);
        assert_eq!(t, e, "trace JSON bytes diverged between executors");
    }
}

#[test]
fn event_executor_double_run_is_bit_identical() {
    // The CI executor-matrix leg re-runs the suite twice under
    // COLUMBIA_EXECUTOR=events; this is the in-tree pin of the same
    // property on the chaos workload.
    for &n in parity_widths() {
        let plan = Some(Arc::new(FaultPlan::new(
            CHAOS_SEEDS[2],
            n,
            FaultConfig::severe(),
        )));
        let (v1, t1) = chaos_world(n, plan.clone(), Executor::Events);
        let (v2, t2) = chaos_world(n, plan, Executor::Events);
        assert_eq!(digest_f64s(v1.iter()), digest_f64s(v2.iter()));
        assert_eq!(t1, t2, "event-executor traces diverged across runs");
    }
}

#[test]
fn multigrid_workload_parity_includes_per_level_ledgers() {
    let spec = HaloWorkload {
        points_per_rank: 16,
        levels: 3,
        cycles: 2,
    };
    for &n in parity_widths() {
        let t = spec.run(n, &ExecContext::default().with_executor(Executor::Threads));
        let e = spec.run(n, &ExecContext::default().with_executor(Executor::Events));
        assert_eq!(
            digest_f64s(t.rms_history.iter()),
            digest_f64s(e.rms_history.iter()),
            "residual history diverged at n={n}"
        );
        assert_eq!(
            digest_traces(&t.traces),
            digest_traces(&e.traces),
            "per-level ledgers diverged at n={n}"
        );
    }
}
