//! The build must stay hermetic: no registry or git dependencies anywhere
//! in the workspace graph. Everything resolves to in-tree path crates, so
//! `cargo build --offline` works on a machine that has never seen a
//! crates.io index.

use std::path::Path;
use std::process::Command;

#[test]
fn lockfile_contains_no_external_sources() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let lock = std::fs::read_to_string(Path::new(manifest_dir).join("Cargo.lock"))
        .expect("Cargo.lock must be committed at the workspace root");
    let mut packages = 0usize;
    for line in lock.lines() {
        let line = line.trim();
        if line == "[[package]]" {
            packages += 1;
        }
        // Path-only packages carry no `source` key; registry and git
        // dependencies do.
        assert!(
            !line.starts_with("source ="),
            "external dependency leaked into Cargo.lock: {line}"
        );
        assert!(
            !line.starts_with("checksum ="),
            "registry checksum in Cargo.lock: {line}"
        );
    }
    assert!(
        packages >= 12,
        "expected the full workspace in the lockfile, found {packages} packages"
    );
}

#[test]
fn cargo_tree_resolves_offline_to_path_crates_only() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(env!("CARGO"))
        .args([
            "tree",
            "--workspace",
            "--offline",
            "--edges",
            "normal,dev,build",
        ])
        .current_dir(manifest_dir)
        .output()
        .expect("cargo tree must run offline");
    assert!(
        out.status.success(),
        "cargo tree --offline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let tree = String::from_utf8_lossy(&out.stdout);
    let mut crates_seen = 0usize;
    for line in tree.lines() {
        if !line.contains(" v0.") && !line.contains(" v1.") {
            continue; // separator lines between workspace roots
        }
        crates_seen += 1;
        assert!(
            line.contains("(/") || line.contains("(*)"),
            "dependency without a local path (registry crate?): {line}"
        );
    }
    assert!(
        crates_seen >= 12,
        "cargo tree listed only {crates_seen} crate lines:\n{tree}"
    );
}
