//! Cross-crate integration: the full NSU3D-style pipeline.

use columbia_comm::HybridLayout;
use columbia_mesh::{extract_lines, wing_mesh, WingMeshSpec};
use columbia_mg::{CycleParams, CycleType};
use columbia_rans::parallel::{
    build_local_levels, partition_mesh_line_aware, run_parallel_smoothing,
};
use columbia_rans::{RansSolver, SolverParams};

fn params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

/// `COLUMBIA_SLOW_TESTS=1` (set in CI) runs the paper-scale variants; the
/// default keeps the suite fast on a laptop without losing coverage of any
/// code path — only mesh size and cycle counts shrink.
fn slow_tests() -> bool {
    columbia_rt::env::slow_tests()
}

#[test]
fn mesh_to_converged_multigrid_solution() {
    let (points, max_cycles) = if slow_tests() {
        (8_000, 50)
    } else {
        (4_000, 40)
    };
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(points)
    });
    let mut solver = RansSolver::new(mesh, params(), 5);
    let h = solver.solve(&CycleParams::default(), 1e-11, max_cycles);
    assert!(
        h.orders_reduced() > 4.0,
        "pipeline failed to converge: {} orders",
        h.orders_reduced()
    );
    // Level hierarchy is genuinely multigrid.
    let sizes = solver.level_sizes();
    assert!(sizes.len() >= 4);
    assert!(sizes[0] / sizes[sizes.len() - 1] > 50);
}

#[test]
fn w_cycle_beats_v_cycle_on_larger_mesh() {
    let points = if slow_tests() { 8_000 } else { 3_000 };
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(points)
    });
    let cycles = if slow_tests() { 15 } else { 10 };
    let mut v = RansSolver::new(mesh.clone(), params(), 4);
    let mut w = RansSolver::new(mesh, params(), 4);
    let hv = v.solve(
        &CycleParams {
            cycle: CycleType::V,
            ..Default::default()
        },
        0.0,
        cycles,
    );
    let hw = w.solve(
        &CycleParams {
            cycle: CycleType::W,
            ..Default::default()
        },
        0.0,
        cycles,
    );
    // The paper uses W exclusively for robustness/speed; allow a narrow
    // tolerance since V can tie on easy cases.
    assert!(
        hw.orders_reduced() >= hv.orders_reduced() - 0.4,
        "W {} vs V {}",
        hw.orders_reduced(),
        hv.orders_reduced()
    );
}

#[test]
fn partitioned_execution_matches_serial_and_respects_lines() {
    let mesh = wing_mesh(&WingMeshSpec {
        ni: 24,
        nj: 5,
        nk: 12,
        nk_bl: 6,
        jitter: 0.0,
        ..Default::default()
    });
    let p = params();

    // Lines never broken by the partitioner.
    let part = partition_mesh_line_aware(&mesh, 6, p.line_threshold);
    let lines = extract_lines(&mesh, p.line_threshold).lines;
    for line in &lines {
        let p0 = part[line[0] as usize];
        assert!(line.iter().all(|&v| part[v as usize] == p0));
    }

    // Parallel smoothing equals serial smoothing.
    let mut serial = columbia_rans::RansLevel::new(mesh.clone(), p);
    serial.apply_bcs();
    for _ in 0..2 {
        serial.smooth_sweep();
    }
    let (u, _, traces) =
        run_parallel_smoothing(&mesh, p, 6, 2, &mut columbia_comm::ExecContext::default());
    let mut max_diff = 0.0f64;
    for (v, su) in serial.u.to_aos().iter().enumerate() {
        for k in 0..6 {
            max_diff = max_diff.max((u[v][k] - su[k]).abs());
        }
    }
    assert!(max_diff < 1e-8, "parallel/serial mismatch {max_diff}");

    // Hybrid aggregation reduces messages versus pure MPI.
    let (decomp, _) = build_local_levels(&mesh, &part, 6, p);
    let pure = HybridLayout::pure_mpi(6).aggregate(&decomp, 48);
    let hybrid = HybridLayout::block(6, 3).aggregate(&decomp, 48);
    let msgs_pure: u64 = pure.iter().map(|s| s.total_msgs()).sum();
    let msgs_hybrid: u64 = hybrid.iter().map(|s| s.total_msgs()).sum();
    assert!(
        msgs_hybrid < msgs_pure,
        "hybrid should aggregate: {msgs_hybrid} vs {msgs_pure}"
    );
    assert!(traces.iter().any(|t| t.stats.total_msgs() > 0));
}

#[test]
fn measured_profile_drives_machine_model() {
    use columbia_machine::{simulate_cycle, Fabric, MachineConfig, RunConfig};
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(10_000)
    });
    let mut solver = RansSolver::new(mesh, params(), 5);
    solver.solve(&CycleParams::default(), 0.0, 2);
    let profile = columbia_rans::measure_profile(
        &mut solver,
        &CycleParams::default(),
        &[8, 16, 32],
        8,
        72.0e6,
        "measured",
        &mut columbia_comm::ExecContext::default(),
    );
    profile.validate().unwrap();
    let m = MachineConfig::columbia_vortex();
    let t128 = simulate_cycle(&profile, &m, &RunConfig::mpi(128, Fabric::NumaLink4))
        .unwrap()
        .seconds;
    let t2008 = simulate_cycle(&profile, &m, &RunConfig::mpi(2008, Fabric::NumaLink4))
        .unwrap()
        .seconds;
    // Our operator is deliberately cheaper per point than NSU3D's
    // (first-order fluxes, fewer sweeps), so the measured profile lands
    // below the paper's 31.3 s — but must stay the same order of
    // magnitude and scale the same way.
    assert!(
        t128 > 2.0 && t128 < 80.0,
        "measured 128-CPU cycle {t128} s implausible (paper 31.3 s)"
    );
    let speedup = 128.0 * t128 / t2008;
    assert!(
        speedup > 1500.0,
        "measured profile should still scale well: {speedup}"
    );
}
