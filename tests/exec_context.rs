//! Equivalence suite for the unified [`ExecContext`] drivers.
//!
//! The goldens below were captured from the pre-refactor driver variants
//! (`run_parallel_smoothing_faulty` / `_traced`, `ParallelMg::solve_traced`)
//! immediately before their removal, on the exact inputs reproduced here.
//! Every digest is an FNV-1a 64 over deterministic bytes — solver state
//! bits, `CommStats` counters or rendered trace JSON — so these tests pin
//! the refactor to bit-identical behaviour at 2/4/8 ranks, with and
//! without fault plans, with and without tracing.

use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
use columbia_comm::{CommStats, ExecContext, FaultConfig, FaultPlan, PoolPolicy, RankTrace};
use columbia_core::{CartAnalysis, CaseStatus, DatabaseFill, DatabaseSpec, FillPolicy};
use columbia_euler::state::freestream5;
use columbia_mesh::{wing_mesh, Vec3, WingMeshSpec};
use columbia_mg::{solve_to_tolerance, CycleParams, CycleType, MultigridLevel};
use columbia_rans::level::SolverParams;
use columbia_rans::parallel_mg::ParallelMg;
use columbia_rt::fault::CasePlan;
use columbia_sfc::CurveKind;
use std::sync::Arc;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn digest_f64s<'a>(vals: impl Iterator<Item = &'a f64>) -> u64 {
    let mut h = FNV_OFFSET;
    for v in vals {
        h = fnv_u64(h, v.to_bits());
    }
    h
}

fn digest_stats(stats: &[CommStats]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in stats {
        for (name, v) in s.counter_pairs() {
            h = fnv_bytes(h, name.as_bytes());
            h = fnv_u64(h, v);
        }
        for (peer, msgs, bytes) in s.peers() {
            h = fnv_u64(h, peer as u64);
            h = fnv_u64(h, msgs);
            h = fnv_u64(h, bytes);
        }
    }
    h
}

fn digest_traces(traces: &[RankTrace]) -> u64 {
    digest_stats(&traces.iter().map(|t| t.stats.clone()).collect::<Vec<_>>())
}

fn rans_mesh() -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        ni: 16,
        nj: 4,
        nk: 10,
        nk_bl: 5,
        jitter: 0.0,
        ..Default::default()
    })
}

fn rans_params() -> SolverParams {
    SolverParams {
        mach: 0.5,
        ..Default::default()
    }
}

fn sphere_mesh() -> columbia_cartesian::CartMesh {
    let prof: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 10.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 10)]);
    let config = CutCellConfig {
        min_level: 3,
        max_level: 4,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1)
}

/// The three capability regimes the pre-refactor variants hard-coded:
/// clean, fault-free plan (must equal clean), seeded severe plan.
fn regimes(nparts: usize) -> Vec<(&'static str, Option<Arc<FaultPlan>>)> {
    vec![
        ("none", None),
        ("free", Some(Arc::new(FaultPlan::fault_free(nparts)))),
        (
            "severe",
            Some(Arc::new(FaultPlan::new(
                0xBADC0DE,
                nparts,
                FaultConfig::severe(),
            ))),
        ),
    ]
}

/// Pre-refactor goldens: (nparts, regime, state digest, rms bits, stats
/// digest). State and rms are fault-invariant (the protocol hides every
/// injected fault from payloads); the stats digests differ under faults
/// because the protocol counters record the recoveries.
const RANS_GOLDEN: [(usize, &str, u64, u64, u64); 9] = [
    (
        2,
        "none",
        0x7812e6edbe1f1cad,
        0x3fb727f2bfa5094b,
        0x4b8cc53bc6ddbb2c,
    ),
    (
        2,
        "free",
        0x7812e6edbe1f1cad,
        0x3fb727f2bfa5094b,
        0x4b8cc53bc6ddbb2c,
    ),
    (
        2,
        "severe",
        0x7812e6edbe1f1cad,
        0x3fb727f2bfa5094b,
        0xe769a42448199cdc,
    ),
    (
        4,
        "none",
        0xe07d036eda60a750,
        0x3fb727f2bfa5094e,
        0xd7682acb728f7f6f,
    ),
    (
        4,
        "free",
        0xe07d036eda60a750,
        0x3fb727f2bfa5094e,
        0xd7682acb728f7f6f,
    ),
    (
        4,
        "severe",
        0xe07d036eda60a750,
        0x3fb727f2bfa5094e,
        0xf5067c404dab9bb5,
    ),
    (
        8,
        "none",
        0x7ffd4a7dc1083885,
        0x3fb727f2bfa5094e,
        0xa20c06c4ffba766d,
    ),
    (
        8,
        "free",
        0x7ffd4a7dc1083885,
        0x3fb727f2bfa5094e,
        0xa20c06c4ffba766d,
    ),
    (
        8,
        "severe",
        0x7ffd4a7dc1083885,
        0x3fb727f2bfa5094e,
        0x8972e960e7771c90,
    ),
];

const EULER_GOLDEN: [(usize, &str, u64, u64, u64); 9] = [
    (
        2,
        "none",
        0x03298dec36b71559,
        0x3f4c7aaa359e8ca5,
        0x9fe51fd93712af82,
    ),
    (
        2,
        "free",
        0x03298dec36b71559,
        0x3f4c7aaa359e8ca5,
        0x9fe51fd93712af82,
    ),
    (
        2,
        "severe",
        0x03298dec36b71559,
        0x3f4c7aaa359e8ca5,
        0xdf451a53a709f883,
    ),
    (
        4,
        "none",
        0x158548443cee0577,
        0x3f4c7aaa359e8caa,
        0xbb6bad3d7f2a4913,
    ),
    (
        4,
        "free",
        0x158548443cee0577,
        0x3f4c7aaa359e8caa,
        0xbb6bad3d7f2a4913,
    ),
    (
        4,
        "severe",
        0x158548443cee0577,
        0x3f4c7aaa359e8caa,
        0x685592c49b29087a,
    ),
    (
        8,
        "none",
        0x6b3e20350076d800,
        0x3f4c7aaa359e8caa,
        0x0f749ad5ce94b66c,
    ),
    (
        8,
        "free",
        0x6b3e20350076d800,
        0x3f4c7aaa359e8caa,
        0x0f749ad5ce94b66c,
    ),
    (
        8,
        "severe",
        0x6b3e20350076d800,
        0x3f4c7aaa359e8caa,
        0x46a5d75ae1914ff4,
    ),
];

/// Pre-refactor trace goldens at 2 ranks: (regime, JSON digest, JSON len).
const RANS_TRACE_GOLDEN: [(&str, u64, usize); 2] = [
    ("none", 0xf2930604290d9a3f, 709),
    ("severe", 0xf6ef4cdaaffe9598, 877),
];
const EULER_TRACE_GOLDEN: [(&str, u64, usize); 2] = [
    ("none", 0x26f1f1ac972a8f13, 718),
    ("severe", 0x7e4f846e49450209, 885),
];

/// Distributed multigrid goldens (3 ranks, 3 levels, 3 cycles): history
/// and stats are tracer-invariant, and the trace JSON is byte-stable.
const PMG_HIST_GOLDEN: u64 = 0x85e92c5166216061;
const PMG_STATS_GOLDEN: u64 = 0x0fd8a654fcef687a;
const PMG_TRACE_GOLDEN: (u64, usize) = (0x897adcc1f3ce1bb5, 3560);

#[test]
fn rans_unified_driver_matches_pre_refactor_goldens() {
    let m = rans_mesh();
    for &(nparts, regime, gu, grms, gstats) in &RANS_GOLDEN {
        let plan = regimes(nparts)
            .into_iter()
            .find(|(l, _)| *l == regime)
            .unwrap()
            .1;
        let mut ctx = ExecContext::default().with_faults(plan);
        let (u, rms, traces) =
            columbia_rans::parallel::run_parallel_smoothing(&m, rans_params(), nparts, 3, &mut ctx);
        assert_eq!(
            digest_f64s(u.iter().flatten()),
            gu,
            "RANS {nparts} {regime}: state digest"
        );
        assert_eq!(rms.to_bits(), grms, "RANS {nparts} {regime}: rms bits");
        assert_eq!(
            digest_traces(&traces),
            gstats,
            "RANS {nparts} {regime}: stats digest"
        );
    }
}

#[test]
fn euler_unified_driver_matches_pre_refactor_goldens() {
    let cm = sphere_mesh();
    let fs = freestream5(0.5, 0.0, 0.0);
    for &(nparts, regime, gu, grms, gstats) in &EULER_GOLDEN {
        let plan = regimes(nparts)
            .into_iter()
            .find(|(l, _)| *l == regime)
            .unwrap()
            .1;
        let mut ctx = ExecContext::default().with_faults(plan);
        let (u, rms, traces) =
            columbia_euler::parallel::run_parallel_smoothing(&cm, fs, 1.5, nparts, 3, &mut ctx);
        assert_eq!(
            digest_f64s(u.iter().flatten()),
            gu,
            "EULER {nparts} {regime}: state digest"
        );
        assert_eq!(rms.to_bits(), grms, "EULER {nparts} {regime}: rms bits");
        assert_eq!(
            digest_traces(&traces),
            gstats,
            "EULER {nparts} {regime}: stats digest"
        );
    }
}

#[test]
fn rans_trace_json_matches_pre_refactor_goldens() {
    let m = rans_mesh();
    for &(regime, gdigest, glen) in &RANS_TRACE_GOLDEN {
        let plan = regimes(2)
            .into_iter()
            .find(|(l, _)| *l == regime)
            .unwrap()
            .1;
        let mut ctx = ExecContext::traced().with_faults(plan);
        let _ = columbia_rans::parallel::run_parallel_smoothing(&m, rans_params(), 2, 3, &mut ctx);
        let json = ctx.finish_trace().to_json().render();
        assert_eq!(json.len(), glen, "RANS trace {regime}: JSON length");
        assert_eq!(
            fnv_bytes(FNV_OFFSET, json.as_bytes()),
            gdigest,
            "RANS trace {regime}: JSON digest"
        );
    }
}

#[test]
fn euler_trace_json_matches_pre_refactor_goldens() {
    let cm = sphere_mesh();
    let fs = freestream5(0.5, 0.0, 0.0);
    for &(regime, gdigest, glen) in &EULER_TRACE_GOLDEN {
        let plan = regimes(2)
            .into_iter()
            .find(|(l, _)| *l == regime)
            .unwrap()
            .1;
        let mut ctx = ExecContext::traced().with_faults(plan);
        let _ = columbia_euler::parallel::run_parallel_smoothing(&cm, fs, 1.5, 2, 3, &mut ctx);
        let json = ctx.finish_trace().to_json().render();
        assert_eq!(json.len(), glen, "EULER trace {regime}: JSON length");
        assert_eq!(
            fnv_bytes(FNV_OFFSET, json.as_bytes()),
            gdigest,
            "EULER trace {regime}: JSON digest"
        );
    }
}

fn pmg_mesh() -> columbia_mesh::UnstructuredMesh {
    wing_mesh(&WingMeshSpec {
        ni: 24,
        nj: 5,
        nk: 12,
        nk_bl: 6,
        jitter: 0.0,
        ..Default::default()
    })
}

#[test]
fn parallel_mg_unified_solve_matches_pre_refactor_goldens() {
    let m = pmg_mesh();
    // Clean context: history and stats match both legacy entry points
    // (`solve` and `solve_traced` were already stats-identical).
    let pmg = ParallelMg::new(&m, rans_params(), 3, 3);
    let (h, traces) = pmg.solve(&CycleParams::default(), 4.0, 3, &mut ExecContext::default());
    assert_eq!(digest_f64s(h.residuals.iter()), PMG_HIST_GOLDEN);
    assert_eq!(digest_traces(&traces), PMG_STATS_GOLDEN);

    // Traced context: same history and stats, byte-stable trace JSON.
    let pmg = ParallelMg::new(&m, rans_params(), 3, 3);
    let mut ctx = ExecContext::traced();
    let (ht, tt) = pmg.solve(&CycleParams::default(), 4.0, 3, &mut ctx);
    let json = ctx.finish_trace().to_json().render();
    assert_eq!(digest_f64s(ht.residuals.iter()), PMG_HIST_GOLDEN);
    assert_eq!(digest_traces(&tt), PMG_STATS_GOLDEN);
    assert_eq!(json.len(), PMG_TRACE_GOLDEN.1);
    assert_eq!(fnv_bytes(FNV_OFFSET, json.as_bytes()), PMG_TRACE_GOLDEN.0);
}

#[test]
fn disabled_pool_changes_no_payload_bit() {
    let m = rans_mesh();
    let (u, rms, pooled) = columbia_rans::parallel::run_parallel_smoothing(
        &m,
        rans_params(),
        2,
        3,
        &mut ExecContext::default(),
    );
    let mut ctx = ExecContext::default().with_pool(PoolPolicy::disabled());
    let (u2, rms2, unpooled) =
        columbia_rans::parallel::run_parallel_smoothing(&m, rans_params(), 2, 3, &mut ctx);
    assert_eq!(
        digest_f64s(u.iter().flatten()),
        digest_f64s(u2.iter().flatten())
    );
    assert_eq!(rms.to_bits(), rms2.to_bits());
    // Identical traffic, different allocation behaviour: pool-off takes a
    // miss per checkout and recycles nothing.
    for (a, b) in pooled.iter().zip(&unpooled) {
        assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
        assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
        assert_eq!(b.stats.pool().hits, 0);
        assert_eq!(b.stats.pool().recycled, 0);
        assert!(b.stats.pool().misses >= a.stats.pool().misses);
    }
    assert!(pooled.iter().any(|t| t.stats.pool().hits > 0));
}

/// 1-D damped-Jacobi Poisson level, just enough of a [`MultigridLevel`] to
/// drive the generic mg driver from a test crate.
struct PoissonLevel {
    u: Vec<f64>,
    f: Vec<f64>,
    restricted: Vec<f64>,
}

impl PoissonLevel {
    fn new(n: usize) -> Self {
        PoissonLevel {
            u: vec![0.0; n],
            f: vec![0.0; n],
            restricted: vec![0.0; n],
        }
    }

    fn residual(&self, i: usize) -> f64 {
        let n = self.u.len();
        let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
        let left = if i == 0 { 0.0 } else { self.u[i - 1] };
        let right = if i + 1 == n { 0.0 } else { self.u[i + 1] };
        self.f[i] - (2.0 * self.u[i] - left - right) / h2
    }
}

impl MultigridLevel for PoissonLevel {
    fn smooth(&mut self, sweeps: usize) {
        let n = self.u.len();
        let h2 = 1.0 / ((n + 1) as f64 * (n + 1) as f64);
        for _ in 0..sweeps {
            let old = self.u.clone();
            for i in 0..n {
                let left = if i == 0 { 0.0 } else { old[i - 1] };
                let right = if i + 1 == n { 0.0 } else { old[i + 1] };
                let jac = (h2 * self.f[i] + left + right) / 2.0;
                self.u[i] = old[i] + 0.8 * (jac - old[i]);
            }
        }
    }

    fn residual_norm(&mut self) -> f64 {
        let n = self.u.len();
        let ss: f64 = (0..n).map(|i| self.residual(i).powi(2)).sum();
        (ss / n as f64).sqrt()
    }

    fn restrict_into(&mut self, coarse: &mut Self) {
        let nc = coarse.u.len();
        for c in 0..nc {
            let i = 2 * c + 1;
            coarse.u[c] = self.u[i];
            coarse.restricted[c] = self.u[i];
            coarse.f[c] = self.residual(i);
        }
    }

    fn prolong_from(&mut self, coarse: &Self) {
        for c in 0..coarse.u.len() {
            let corr = coarse.u[c] - coarse.restricted[c];
            self.u[2 * c + 1] += corr;
            self.u[2 * c] += 0.5 * corr;
            if 2 * c + 2 < self.u.len() {
                self.u[2 * c + 2] += 0.5 * corr;
            }
        }
    }
}

#[test]
fn mg_driver_honours_context_tracer_and_stays_bit_identical() {
    let build = || {
        let mut fine = PoissonLevel::new(31);
        fine.f = vec![1.0; 31];
        vec![fine, PoissonLevel::new(15), PoissonLevel::new(7)]
    };
    let cp = CycleParams {
        cycle: CycleType::W,
        ..Default::default()
    };
    let mut plain = build();
    let h = solve_to_tolerance(&mut plain, &cp, 0.0, 3, &mut ExecContext::default());

    let mut traced = build();
    let mut ctx = ExecContext::traced();
    let ht = solve_to_tolerance(&mut traced, &cp, 0.0, 3, &mut ctx);
    let trace = ctx.finish_trace();

    // Tracing must not perturb the numerics.
    assert_eq!(
        h.residuals.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        ht.residuals.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
    );
    // One `cycle` span per cycle, W-cycle revisits visible underneath.
    assert_eq!(trace.spans.len(), 3);
    for (i, s) in trace.spans.iter().enumerate() {
        assert_eq!(s.key.name, "cycle");
        assert_eq!(s.key.cycle, Some(i));
        assert!(s.gauges.contains_key("residual_rms"));
        let coarsest = s
            .children
            .iter()
            .filter(|c| c.key.name == "mg_level" && c.key.level == Some(2))
            .count();
        assert_eq!(coarsest, 4, "W-cycle visits the coarsest level 2^2 times");
    }
}

#[test]
fn database_fill_context_policies_match_legacy_behaviour() {
    let analysis = CartAnalysis::default().resolution(3, 4);
    let fill = DatabaseFill::new(analysis, |defl| {
        let mut fin = TriMesh::cuboid(Vec3::new(0.1, -0.1, -0.4), Vec3::new(0.5, 0.1, 0.4));
        fin.rotate(2, Vec3::ZERO, defl);
        Geometry::new(&[fin])
    });
    let spec = DatabaseSpec {
        deflections: vec![0.0, 0.2],
        machs: vec![0.5, 2.0],
        alphas: vec![0.0],
        betas: vec![0.0],
        cycles: 15,
    };
    let policy = FillPolicy {
        max_attempts: 2,
        chaos: Some(CasePlan::transient(11, 0.0).poison(3)),
    };
    // Traced, chaos-poisoned fill through the context: outcome totals are
    // thread-count independent and the poisoned case quarantines.
    let mut ctx = ExecContext::traced().with_fill(policy.clone());
    let db = fill.run(&spec, 2, &mut ctx);
    let trace = ctx.finish_trace();
    assert_eq!(db.len(), 4);
    assert_eq!(
        db.iter().filter(|e| !e.status.is_ok()).count(),
        1,
        "exactly the poisoned case fails"
    );
    assert!(matches!(
        db[3].status,
        CaseStatus::Quarantined { attempts: 2, .. }
    ));
    let span = trace.find("database_fill").expect("fill span");
    assert_eq!(span.counters["cases"], 4);
    assert_eq!(span.counters["quarantined"], 1);
    assert_eq!(span.counters["converged"], 3);
    assert_eq!(span.children.len(), 4);
    // Default context = default policy: all cases converge, no trace.
    let mut clean_ctx = ExecContext::default();
    let clean = fill.run(&spec, 1, &mut clean_ctx);
    assert!(clean.iter().all(|e| e.status == CaseStatus::Converged));
    assert!(clean_ctx.finish_trace().spans.is_empty());
}
