//! Paper-scale worlds on the event executor.
//!
//! The paper's headline runs use 502–2016 CPUs of the Columbia machine;
//! the event executor's job is to host those rank counts *as real rank
//! programs* (not analytic models) on one development machine. The
//! always-on test runs a 512-rank multigrid world; the full 2016-rank
//! configuration — the paper's largest NSU3D run — is gated behind
//! `COLUMBIA_SLOW_TESTS` with a wall-clock sanity bound.

use columbia_comm::workload::HaloWorkload;
use columbia_comm::{ExecContext, Executor};
use std::time::{Duration, Instant};

/// Run one paper-scale world and sanity-check the report shape.
fn run_world_of(nranks: usize, spec: HaloWorkload) -> columbia_comm::workload::WorkloadReport {
    let ctx = ExecContext::default().with_executor(Executor::Events);
    let report = spec.run(nranks, &ctx);
    assert_eq!(
        report.traces.len(),
        nranks,
        "every rank must hand in a ledger"
    );
    assert_eq!(report.rms_history.len(), spec.cycles);
    assert!(report.summary.total_bytes > 0, "halo traffic must flow");
    assert!(
        report.rms_history.iter().all(|r| r.is_finite() && *r > 0.0),
        "residual history degenerate: {:?}",
        report.rms_history
    );
    // Every rank barriers once per cycle plus once at teardown, so the
    // world really ran the full multigrid cycle structure everywhere.
    for t in &report.traces {
        assert_eq!(t.stats.barriers() as usize, spec.cycles, "{:?}", t.rank);
        assert!(!t.per_level.is_empty(), "per-level attribution missing");
    }
    report
}

#[test]
fn event_executor_hosts_a_512_rank_world() {
    let report = run_world_of(512, HaloWorkload::smoke());
    // 512 ranks × 3 levels × 3 smooths/cycle × 2 one-cell halo messages,
    // plus collectives: the world moved real traffic (~80 KB of payload).
    assert!(report.summary.total_bytes > 50_000);
}

#[test]
fn event_executor_hosts_the_2016_rank_paper_world() {
    if !columbia_rt::env::slow_tests() {
        eprintln!("skipping 2016-rank world (set COLUMBIA_SLOW_TESTS=1)");
        return;
    }
    let start = Instant::now();
    let report = run_world_of(2016, HaloWorkload::smoke());
    let elapsed = start.elapsed();
    // Identical residuals on re-run: the paper world is replayable.
    let again = run_world_of(2016, HaloWorkload::smoke());
    assert_eq!(
        report
            .rms_history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        again
            .rms_history
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>()
    );
    // Wall-clock sanity: a cooperative 2016-rank world is thousands of
    // context hand-offs, not thousands of busy threads. Slower-than-usual
    // CI machines must not flake the suite, so past the expected bound we
    // only warn; the hard ceiling is generous enough that tripping it
    // means the scheduler regressed to spinning, not that the runner was
    // busy.
    if elapsed >= Duration::from_secs(300) {
        eprintln!(
            "warning: 2016-rank world took {elapsed:?} (expected < 300s); \
             slow runner or scheduler regression?"
        );
    }
    assert!(
        elapsed < Duration::from_secs(1800),
        "2016-rank world took {elapsed:?}; the cooperative scheduler has \
         almost certainly regressed to spinning"
    );
}
