//! Regression for `HybridLayout::aggregate_measured` fed with *measured*,
//! threaded per-partition statistics whose peer sets overlap: sibling
//! partitions of one hybrid rank routinely talk to the same remote
//! partition, and their message counts must accumulate per remote rank —
//! never overwrite.

use columbia_comm::{run_ranks, CommStats, HybridLayout};

#[test]
fn threaded_measured_stats_aggregate_overlapping_peer_sets() {
    // Four partitions, threaded for real: a send ring plus everyone
    // reporting to partition 0. Under a 2-threads-per-rank layout the two
    // partitions of rank 1 both target partition 0 — an overlapping peer
    // set after mapping to ranks.
    let nparts = 4;
    let per_part: Vec<CommStats> = run_ranks(nparts, |rank| {
        let me = rank.rank();
        let n = rank.nranks();
        rank.send((me + 1) % n, 1, vec![me as f64]);
        let _ = rank.recv((me + n - 1) % n, 1);
        if me == 0 {
            for p in 1..n {
                let _ = rank.recv(p, 2);
            }
        } else {
            rank.send(0, 2, vec![1.0, 2.0]);
        }
        rank.barrier();
        rank.take_stats()
    });

    // Partitions {0,1} -> rank 0, {2,3} -> rank 1.
    let layout = HybridLayout::block(nparts, 2);
    let agg = layout.aggregate_measured(&per_part);
    assert_eq!(agg.len(), 2);

    // Rank 0's only cross-rank send is partition 1's ring message to
    // partition 2 (1 message, 8 bytes).
    assert_eq!(agg[0].total_msgs(), 1);
    assert_eq!(agg[0].total_bytes(), 8);
    assert_eq!(agg[0].degree(), 1);

    // Rank 1 sends three cross-rank messages, all towards rank 0:
    // partition 3's ring message (8 bytes) plus both partitions' reports
    // to partition 0 (16 bytes each). A naive per-partition insert would
    // keep only one partition's counts.
    assert_eq!(agg[1].total_msgs(), 3);
    assert_eq!(agg[1].total_bytes(), 8 + 16 + 16);
    assert_eq!(agg[1].degree(), 1, "both targets map to rank 0");

    // Conservation: cross-rank messages in equal cross-rank messages out
    // of the per-partition ledgers.
    let cross: u64 = per_part
        .iter()
        .enumerate()
        .map(|(p, s)| {
            s.peers()
                .filter(|&(q, _, _)| layout.part_to_rank[q] != layout.part_to_rank[p])
                .map(|(_, m, _)| m)
                .sum::<u64>()
        })
        .sum();
    let agg_total: u64 = agg.iter().map(|s| s.total_msgs()).sum();
    assert_eq!(agg_total, cross);

    // Clean run: no fault counters leak through aggregation.
    assert!(agg.iter().all(|s| s.faults().is_clean()));
}
