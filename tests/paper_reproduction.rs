//! Shape assertions for every figure of the paper's evaluation section.
//!
//! EXPERIMENTS.md documents the quantitative paper-vs-model comparison;
//! these tests lock in the *qualitative* claims so regressions in any crate
//! surface immediately.

use columbia_machine::{
    ib_rank_limit, paper_cart3d_25m, paper_nsu3d_72m, simulate_cycle, Fabric, MachineConfig,
    ProgModel, RunConfig, SimError,
};

fn m() -> MachineConfig {
    MachineConfig::columbia_vortex()
}

fn nl(p: &columbia_machine::CycleProfile, n: usize) -> f64 {
    simulate_cycle(p, &m(), &RunConfig::mpi(n, Fabric::NumaLink4))
        .unwrap()
        .seconds
}

#[test]
fn fig14b_headline_cycle_times_and_speedups() {
    let p = paper_nsu3d_72m();
    let t128 = nl(&p, 128);
    let t2008 = nl(&p, 2008);
    assert!((t128 - 31.3).abs() / 31.3 < 0.10, "128-CPU cycle {t128}");
    assert!((t2008 - 1.95).abs() / 1.95 < 0.15, "2008-CPU cycle {t2008}");
    let speedup6 = 128.0 * t128 / t2008;
    assert!(
        speedup6 > 2008.0 && speedup6 < 2300.0,
        "6-level speedup {speedup6} (paper 2044)"
    );
    // Ordering: single > 4-level > 6-level.
    let s = |prof: &columbia_machine::CycleProfile| 128.0 * nl(prof, 128) / nl(prof, 2008);
    let single = s(&p.truncated(1, true));
    let four = s(&p.truncated(4, true));
    assert!(
        single > four && four > speedup6,
        "{single} {four} {speedup6}"
    );
    assert!(single > 2200.0, "single-grid {single} (paper 2395)");
}

#[test]
fn fig14b_tflops_band() {
    let p = paper_nsu3d_72m();
    let b = simulate_cycle(&p, &m(), &RunConfig::mpi(2008, Fabric::NumaLink4)).unwrap();
    let tf = b.flops_per_second() / 1e12;
    assert!((2.4..=3.4).contains(&tf), "6-level {tf} TF (paper 2.8)");
}

#[test]
fn fig15_hybrid_efficiencies() {
    let p = paper_nsu3d_72m();
    let base = simulate_cycle(
        &p,
        &m(),
        &RunConfig::mpi(128, Fabric::NumaLink4).spread_over(4),
    )
    .unwrap()
    .seconds;
    let e = |threads: usize, fabric: Fabric| {
        base / simulate_cycle(
            &p,
            &m(),
            &RunConfig::hybrid(128, fabric, threads).spread_over(4),
        )
        .unwrap()
        .seconds
    };
    assert!((e(2, Fabric::NumaLink4) - 0.984).abs() < 0.02);
    assert!((e(4, Fabric::NumaLink4) - 0.872).abs() < 0.03);
    let ib1 = e(1, Fabric::InfiniBand);
    assert!(
        ib1 > 0.90 && ib1 < 1.0,
        "IB pure-MPI eff {ib1} (paper 0.957)"
    );
}

#[test]
fn fig16_ib_collapse_is_multigrid_specific() {
    let p = paper_nsu3d_72m();
    let run_nl = RunConfig::hybrid(2008, Fabric::NumaLink4, 2);
    let run_ib = RunConfig::hybrid(2008, Fabric::InfiniBand, 2);
    let ratio = |prof: &columbia_machine::CycleProfile| {
        simulate_cycle(prof, &m(), &run_ib).unwrap().seconds
            / simulate_cycle(prof, &m(), &run_nl).unwrap().seconds
    };
    let single = ratio(&p.truncated(1, true));
    let mg = ratio(&p);
    assert!(single < 1.10, "single grid IB/NL {single}");
    assert!(mg > 1.30, "multigrid IB/NL {mg}");
}

#[test]
fn fig17_18_degradation_grows_with_levels() {
    let p = paper_nsu3d_72m();
    let run_nl = RunConfig::hybrid(2008, Fabric::NumaLink4, 2);
    let run_ib = RunConfig::hybrid(2008, Fabric::InfiniBand, 2);
    let mut prev = 1.0;
    for nlev in [2usize, 3, 4, 5, 6] {
        let prof = p.truncated(nlev, true);
        let r = simulate_cycle(&prof, &m(), &run_ib).unwrap().seconds
            / simulate_cycle(&prof, &m(), &run_nl).unwrap().seconds;
        assert!(
            r >= prev - 0.02,
            "IB/NL ratio must grow with levels: {nlev} -> {r} (prev {prev})"
        );
        prev = r;
    }
    assert!(prev > 1.3, "6-level IB/NL ratio {prev}");
}

#[test]
fn fig19_coarse_levels_alone_are_fabric_insensitive() {
    let p = paper_nsu3d_72m();
    for level in [1usize, 2] {
        let prof = p.single_level(level);
        let nl_t = simulate_cycle(&prof, &m(), &RunConfig::hybrid(2008, Fabric::NumaLink4, 2))
            .unwrap()
            .seconds;
        let ib_t = simulate_cycle(&prof, &m(), &RunConfig::hybrid(2008, Fabric::InfiniBand, 2))
            .unwrap()
            .seconds;
        let ratio = ib_t / nl_t;
        assert!(
            ratio < 1.25,
            "level {level} alone should degrade similarly on both fabrics: {ratio}"
        );
    }
}

#[test]
fn fig20_openmp_breaks_slope_at_128() {
    let p = paper_cart3d_25m();
    let omp = |n: usize| {
        simulate_cycle(
            &p,
            &m(),
            &RunConfig {
                ncpus: n,
                fabric: Fabric::NumaLink4,
                model: ProgModel::PureOpenMp,
                min_nodes: 1,
            },
        )
        .unwrap()
        .seconds
    };
    let mpi = |n: usize| nl(&p, n);
    // Below 128 CPUs OpenMP tracks MPI; above, it pays the coarse-mode
    // derate.
    let r64 = omp(64) / mpi(64);
    let r504 = omp(504) / mpi(504);
    assert!(r64 < 1.02, "OMP should match MPI below 128 CPUs: {r64}");
    assert!(
        r504 > 1.01 && r504 < 1.10,
        "OMP slope break above 128 CPUs: {r504}"
    );
    // Pure OpenMP cannot leave the node.
    assert!(matches!(
        simulate_cycle(
            &p,
            &m(),
            &RunConfig {
                ncpus: 1024,
                fabric: Fabric::NumaLink4,
                model: ProgModel::PureOpenMp,
                min_nodes: 1,
            }
        ),
        Err(SimError::OpenMpSingleNode { .. })
    ));
}

#[test]
fn fig21_cart3d_multigrid_rolls_off() {
    let p = paper_cart3d_25m();
    let sg = p.truncated(1, true);
    let speedup =
        |prof: &columbia_machine::CycleProfile, n: usize| 32.0 * nl(prof, 32) / nl(prof, n);
    let mg2016 = speedup(&p, 2016);
    let sg2016 = speedup(&sg, 2016);
    assert!(
        sg2016 > mg2016 * 1.10,
        "single grid {sg2016} should clearly beat multigrid {mg2016} at 2016"
    );
    // Roll-off appears late (paper: not really until above 1024).
    let mg688 = speedup(&p, 688);
    assert!(
        mg688 > 0.88 * 688.0,
        "688-CPU multigrid should still be near-ideal: {mg688}"
    );
    // TFLOP/s band.
    let b = simulate_cycle(&p, &m(), &RunConfig::mpi(2016, Fabric::NumaLink4)).unwrap();
    let tf = b.flops_per_second() / 1e12;
    assert!((2.0..=3.0).contains(&tf), "{tf} TF (paper ~2.4)");
}

#[test]
fn fig22_ib_dips_crossing_the_node_boundary() {
    let p = paper_cart3d_25m();
    let ib = |n: usize| {
        simulate_cycle(
            &p,
            &m(),
            &RunConfig::mpi(n, Fabric::InfiniBand)
                .spread_over(columbia_machine::cart3d_node_span(n)),
        )
        .unwrap()
        .seconds
    };
    let s496 = 32.0 * ib(32) / ib(496);
    let s508 = 32.0 * ib(32) / ib(508);
    assert!(
        s508 < s496,
        "IB at 508 CPUs (2 nodes) must under-perform 496 (1 node): {s508} vs {s496}"
    );
    // The 1524-rank limit ends the IB series.
    assert!(simulate_cycle(
        &p,
        &m(),
        &RunConfig::mpi(1524, Fabric::InfiniBand).spread_over(4)
    )
    .is_ok());
    assert!(matches!(
        simulate_cycle(&p, &m(), &RunConfig::mpi(2016, Fabric::InfiniBand)),
        Err(SimError::IbRankLimit { .. })
    ));
    assert_eq!(ib_rank_limit(4), 1524);
}

#[test]
fn fig14b_superlinear_speedup_shrinks_with_levels() {
    // Paper Figure 14(b): every NSU3D variant is *superlinear* at 2008
    // CPUs (cache effect of ~36k points/CPU), and the superlinearity
    // shrinks as multigrid levels are added because coarse levels
    // communicate more per flop.
    let p = paper_nsu3d_72m();
    let speedup = |prof: &columbia_machine::CycleProfile| 128.0 * nl(prof, 128) / nl(prof, 2008);
    let mut prev = f64::INFINITY;
    for nlev in [1usize, 4, 6] {
        let s = speedup(&p.truncated(nlev, true));
        assert!(
            s > 2008.0,
            "{nlev}-level speedup {s} at 2008 CPUs must stay superlinear"
        );
        assert!(
            s < prev,
            "{nlev}-level speedup {s} must be below the shallower hierarchy ({prev})"
        );
        prev = s;
    }
}

#[test]
fn sec5_sfc_coarsening_ratio_exceeds_seven() {
    // Paper §V: "reduction ratios of better than 7:1" for the single-pass
    // SFC sibling-collection coarsener on adapted Cart3D meshes.
    use columbia_cartesian::{build_octree, coarsen_mesh, CutCellConfig, Geometry, TriMesh};
    use columbia_mesh::Vec3;
    use columbia_sfc::CurveKind;

    let prof: Vec<(f64, f64)> = (0..=14)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 14.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 16)]);
    // Production-like resolution: the body-adapted band is thin relative
    // to the uniform bulk, as in the paper's 25M-cell SSLV meshes.
    let config = CutCellConfig {
        min_level: 5,
        max_level: 6,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    let fine = columbia_cartesian::extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let c = coarsen_mesh(&fine);
    let ratio = c.ratio(fine.ncells());
    assert!(
        ratio > 7.0,
        "SFC coarsening ratio {ratio} must beat the paper's 7:1"
    );
    // The coarse mesh must itself be coarsenable (multigrid hierarchy).
    let c2 = coarsen_mesh(&c.coarse);
    assert!(c2.ratio(c.coarse.ncells()) > 4.0);
}

#[test]
fn outlook_4016_cpus_requires_hybrid_infiniband() {
    // Paper §VI: >2048 CPUs must use InfiniBand, and the rank limit forces
    // hybrid MPI/OpenMP.
    let machine = MachineConfig::columbia_full();
    let p = paper_nsu3d_72m();
    assert!(matches!(
        simulate_cycle(&p, &machine, &RunConfig::mpi(4016, Fabric::NumaLink4)),
        Err(SimError::FabricSpan { .. })
    ));
    assert!(matches!(
        simulate_cycle(&p, &machine, &RunConfig::mpi(4016, Fabric::InfiniBand)),
        Err(SimError::IbRankLimit { .. })
    ));
    let hybrid = simulate_cycle(
        &p,
        &machine,
        &RunConfig::hybrid(4016, Fabric::InfiniBand, 4),
    );
    assert!(hybrid.is_ok(), "4 OMP threads satisfy the rank limit");
}
