//! Contention-fabric property and parity suite.
//!
//! The discrete-event interconnect (`columbia_machine::contention`) claims
//! four things, and this suite pins each one:
//!
//! 1. **Parity** — with ideal uplinks and no overlapping traffic the
//!    simulator collapses to the analytic `interconnect` closed form,
//!    bit-for-bit (within 1 ulp) at 2/4/8 ranks;
//! 2. **Fairness/conservation/monotonicity properties** — round-robin
//!    never starves a flow, every packet is delivered exactly once and
//!    FIFO per `(src, dst)`, and added traffic never speeds the base
//!    traffic up (per-packet in the synchronous round-robin regime,
//!    makespan-of-base under any arbiter on a shared link);
//! 3. **Determinism** — double runs are bit-identical under the four
//!    chaos seeds of the fault matrix;
//! 4. **Executor integration** — selecting the contention regime reshapes
//!    only the event executor's virtual clock: payloads, `CommStats` and
//!    traces stay bit-identical to the analytic regime, and the emergent
//!    InfiniBand degradation exceeds the analytic ratio on real traced
//!    halo traffic.

use columbia_comm::workload::HaloWorkload;
use columbia_comm::{flows_from_traces, CommStats, ExecContext, Executor, FabricModel, RankTrace};
use columbia_machine::{
    analytic_makespan, makespan, simulate, Arbiter, Delivery, Fabric, LinkSpec, Packet, Topology,
};
use columbia_rt::Pcg32;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_u64(h: u64, x: u64) -> u64 {
    let mut h = h;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn digest_f64s<'a>(vals: impl Iterator<Item = &'a f64>) -> u64 {
    let mut h = FNV_OFFSET;
    for v in vals {
        h = fnv_u64(h, v.to_bits());
    }
    h
}

fn digest_deliveries(deliveries: &[Delivery]) -> u64 {
    let mut h = FNV_OFFSET;
    for d in deliveries {
        h = fnv_u64(h, d.packet.src as u64);
        h = fnv_u64(h, d.packet.dst as u64);
        h = fnv_u64(h, d.packet.bytes);
        h = fnv_u64(h, d.packet.inject_s.to_bits());
        h = fnv_u64(h, d.deliver_s.to_bits());
        h = fnv_u64(h, d.order as u64);
    }
    h
}

fn digest_stats(stats: &[CommStats]) -> u64 {
    let mut h = FNV_OFFSET;
    for s in stats {
        for (name, v) in s.counter_pairs() {
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h = fnv_u64(h, v);
        }
        for (peer, msgs, bytes) in s.peers() {
            h = fnv_u64(h, peer as u64);
            h = fnv_u64(h, msgs);
            h = fnv_u64(h, bytes);
        }
    }
    h
}

fn digest_traces(traces: &[RankTrace]) -> u64 {
    let mut h = digest_stats(&traces.iter().map(|t| t.stats.clone()).collect::<Vec<_>>());
    for t in traces {
        for (&level, s) in &t.per_level {
            h = fnv_u64(h, level as u64);
            h = fnv_u64(h, digest_stats(std::slice::from_ref(s)));
        }
    }
    h
}

/// The four chaos seeds of the fault matrix leg (same set as
/// `tests/executor_parity.rs`).
const CHAOS_SEEDS: [u64; 4] = [0xC0FFEE, 1, 0xBADC0DE, 0x5EED_2016];

const ALL_FABRICS: [Fabric; 3] = [Fabric::NumaLink4, Fabric::InfiniBand, Fabric::TenGigE];
const ALL_ARBITERS: [Arbiter; 3] = [Arbiter::RoundRobin, Arbiter::Priority, Arbiter::FairShare];

fn pkt(src: usize, dst: usize, bytes: u64, inject_s: f64) -> Packet {
    Packet {
        src,
        dst,
        bytes,
        inject_s,
    }
}

/// Distance in representable `f64`s between two non-negative finite times.
fn ulps_apart(a: f64, b: f64) -> u64 {
    assert!(a.is_finite() && b.is_finite() && a >= 0.0 && b >= 0.0);
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
}

/// Random traffic on a Columbia topology: every packet gets its own
/// source/destination/size and an inject time on a microsecond grid.
fn random_traffic(rng: &mut Pcg32, nranks: usize, npkts: usize) -> Vec<Packet> {
    (0..npkts)
        .map(|_| {
            let src = rng.gen_range(0usize..nranks);
            let mut dst = rng.gen_range(0usize..nranks - 1);
            if dst >= src {
                dst += 1;
            }
            let bytes = rng.gen_range(1u64..200_000);
            let inject_s = rng.gen_range(0u64..50) as f64 * 1e-6;
            pkt(src, dst, bytes, inject_s)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Parity: uncontended simulator == analytic closed form, to 1 ulp.
// ---------------------------------------------------------------------------

/// With ideal uplinks and every packet in its own one-second time slot
/// (no queueing anywhere), each delivery must land at the closed-form
/// `inject + latency(span) + bytes / bandwidth(span)` — the exact
/// expression `machine::interconnect` evaluates — within 1 ulp, at
/// 2/4/8 ranks on all three fabrics. A second run must digest
/// identically.
#[test]
fn uncontended_deliveries_match_the_analytic_interconnect_to_one_ulp() {
    for &n in &[2usize, 4, 8] {
        for fabric in ALL_FABRICS {
            let nodes = 2usize.min(fabric.max_nodes());
            let topo = Topology::uncontended(fabric, n, nodes);
            let mut packets = Vec::new();
            let mut slot = 0u64;
            for src in 0..n {
                for hop in [1usize, 2] {
                    let dst = (src + hop) % n;
                    if dst == src {
                        continue;
                    }
                    for bytes in [1u64, 4096, 1_000_000] {
                        packets.push(pkt(src, dst, bytes, slot as f64));
                        slot += 1;
                    }
                }
            }
            let deliveries = simulate(&topo, Arbiter::RoundRobin, &packets);
            assert_eq!(deliveries.len(), packets.len());
            for d in &deliveries {
                let span = if topo.node_of(d.packet.src) == topo.node_of(d.packet.dst) {
                    1
                } else {
                    nodes
                };
                let expect = d.packet.inject_s
                    + (fabric.latency(span) + d.packet.bytes as f64 / fabric.bandwidth(span));
                assert!(
                    ulps_apart(d.deliver_s, expect) <= 1,
                    "{fabric:?} n={n} {}->{} ({} B): sim {} vs analytic {}",
                    d.packet.src,
                    d.packet.dst,
                    d.packet.bytes,
                    d.deliver_s,
                    expect
                );
            }
            let again = simulate(&topo, Arbiter::RoundRobin, &packets);
            assert_eq!(
                digest_deliveries(&deliveries),
                digest_deliveries(&again),
                "uncontended double run diverged ({fabric:?}, n={n})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Properties: fairness, conservation/FIFO, monotonicity.
// ---------------------------------------------------------------------------

columbia_rt::props! {
    config: columbia_rt::props::Config::with_cases(48);

    /// Round-robin starves nobody: with equal-size backlogged flows on
    /// one shared link, every flow's first delivery lands within the
    /// first full round, and the last deliveries of all flows sit within
    /// one round of each other.
    fn prop_round_robin_starves_no_flow(
        nflows in 2usize..6,
        msgs in 2usize..6,
        bytes in 100u64..5000,
    ) {
        let spec = LinkSpec {
            latency_s: 1e-6,
            bandwidth_bps: 1e9,
            capacity_msgs: usize::MAX,
        };
        let topo = Topology::shared_link(nflows, spec);
        let mut packets = Vec::new();
        for f in 0..nflows {
            for _ in 0..msgs {
                packets.push(pkt(f, nflows, bytes, 0.0));
            }
        }
        let deliveries = simulate(&topo, Arbiter::RoundRobin, &packets);
        let per = spec.service_s(bytes);
        let round = nflows as f64 * per;
        let mut first = vec![f64::INFINITY; nflows];
        let mut last = vec![0.0f64; nflows];
        for d in &deliveries {
            let f = d.packet.src;
            first[f] = first[f].min(d.deliver_s);
            last[f] = last[f].max(d.deliver_s);
        }
        for (f, &t) in first.iter().enumerate() {
            assert!(
                t <= round * (1.0 + 1e-9),
                "flow {f} first delivery {t} misses the first round {round}"
            );
        }
        let spread = last.iter().cloned().fold(0.0f64, f64::max)
            - last.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread <= round * (1.0 + 1e-9),
            "per-flow completion spread {spread} exceeds one round {round}"
        );
    }

    /// Conservation and per-flow FIFO on the full Columbia topology:
    /// every packet comes back exactly once and in input order, delivery
    /// sequence numbers are a permutation, nothing is delivered before
    /// its inject, and packets of the same `(src, dst)` flow leave the
    /// fabric in the order they entered it.
    fn prop_conservation_and_per_flow_fifo(
        seed in 0u64..u64::MAX,
        nranks in 2usize..9,
        npkts in 1usize..40,
        fabric_idx in 0usize..3,
        nodes in 1usize..5,
        arb_idx in 0usize..3,
    ) {
        let fabric = ALL_FABRICS[fabric_idx];
        let topo = Topology::columbia(fabric, nranks, nodes);
        let mut rng = Pcg32::seed_from_u64(seed);
        let packets = random_traffic(&mut rng, nranks, npkts);
        let deliveries = simulate(&topo, ALL_ARBITERS[arb_idx], &packets);

        assert_eq!(deliveries.len(), packets.len(), "packets lost or duplicated");
        let mut seen_orders = vec![false; deliveries.len()];
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.packet, packets[i], "packet {i} came back altered");
            assert!(
                !std::mem::replace(&mut seen_orders[d.order], true),
                "delivery order {} assigned twice",
                d.order
            );
            assert!(
                d.deliver_s > d.packet.inject_s,
                "packet {i} delivered at {} before its inject {}",
                d.deliver_s,
                d.packet.inject_s
            );
        }

        // FIFO per flow: the fabric enqueues a flow's packets by
        // (inject time, input index) and every hop's port is a FIFO, so
        // delivery sequence numbers must increase along that order.
        let mut by_flow: std::collections::BTreeMap<(usize, usize), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, p) in packets.iter().enumerate() {
            by_flow.entry((p.src, p.dst)).or_default().push(i);
        }
        for (flow, mut idxs) in by_flow {
            idxs.sort_by_key(|&i| (packets[i].inject_s.to_bits(), i));
            for w in idxs.windows(2) {
                assert!(
                    deliveries[w[0]].order < deliveries[w[1]].order,
                    "flow {flow:?} reordered: packet {} (order {}) should precede {} (order {})",
                    w[0],
                    deliveries[w[0]].order,
                    w[1],
                    deliveries[w[1]].order
                );
            }
        }
    }

    /// Per-packet monotonicity in the synchronous round-robin regime:
    /// base flows `0..f` and extra flows `f..f+g` all backlogged at
    /// t = 0 on one shared link. Round-robin visits the base ports in an
    /// unchanged cyclic order — the extra ports only insert services —
    /// so no base packet is ever delivered earlier than without the
    /// extra traffic.
    fn prop_added_flows_never_speed_up_base_packets(
        seed in 0u64..u64::MAX,
        nbase in 1usize..4,
        nextra in 1usize..4,
        msgs in 1usize..5,
    ) {
        let nflows = nbase + nextra;
        let spec = LinkSpec {
            latency_s: 2e-6,
            bandwidth_bps: 0.5e9,
            capacity_msgs: usize::MAX,
        };
        let topo = Topology::shared_link(nflows, spec);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut base = Vec::new();
        for f in 0..nbase {
            for _ in 0..msgs {
                base.push(pkt(f, nflows, rng.gen_range(1u64..100_000), 0.0));
            }
        }
        let mut extras = base.clone();
        for f in nbase..nflows {
            for _ in 0..msgs {
                extras.push(pkt(f, nflows, rng.gen_range(1u64..100_000), 0.0));
            }
        }
        let solo = simulate(&topo, Arbiter::RoundRobin, &base);
        let mixed = simulate(&topo, Arbiter::RoundRobin, &extras);
        for i in 0..base.len() {
            assert!(
                mixed[i].deliver_s >= solo[i].deliver_s,
                "base packet {i} sped up: {} -> {} with extra traffic",
                solo[i].deliver_s,
                mixed[i].deliver_s
            );
        }
    }

    /// Makespan monotonicity under any arbiter and arbitrary injects:
    /// a single work-conserving link can never finish the base traffic
    /// earlier because extra traffic was added — whichever base packet
    /// gets displaced pushes the base completion time out. (Per-packet
    /// monotonicity is deliberately NOT claimed here: early extra
    /// traffic can reshuffle arbiter rounds so one base packet lands
    /// earlier while another absorbs the delay.)
    fn prop_added_traffic_never_shrinks_the_base_makespan(
        seed in 0u64..u64::MAX,
        nbase in 1usize..12,
        nextra in 1usize..12,
        arb_idx in 0usize..3,
        capacity in 1usize..4,
    ) {
        let nflows = 5;
        let spec = LinkSpec {
            latency_s: 1e-6,
            bandwidth_bps: 1e9,
            capacity_msgs: capacity,
        };
        let topo = Topology::shared_link(nflows, spec);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut traffic = |n: usize| -> Vec<Packet> {
            (0..n)
                .map(|_| {
                    pkt(
                        rng.gen_range(0usize..nflows),
                        nflows,
                        rng.gen_range(1u64..50_000),
                        rng.gen_range(0u64..30) as f64 * 1e-6,
                    )
                })
                .collect()
        };
        let base = traffic(nbase);
        let mut with_extras = base.clone();
        with_extras.extend(traffic(nextra));
        let arb = ALL_ARBITERS[arb_idx];
        let solo_ms = makespan(&simulate(&topo, arb, &base));
        let mixed = simulate(&topo, arb, &with_extras);
        let mixed_base_ms = makespan(&mixed[..base.len()]);
        assert!(
            mixed_base_ms >= solo_ms * (1.0 - 1e-12),
            "base makespan shrank from {solo_ms} to {mixed_base_ms} under {arb:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Determinism: bit-identical double runs under the chaos seeds.
// ---------------------------------------------------------------------------

/// The simulator's output is a pure function of (topology, arbiter,
/// packet list): for each chaos seed's random burst, on every fabric and
/// arbiter, two runs must produce byte-identical deliveries.
#[test]
fn simulator_double_run_is_bit_identical_under_chaos_seeds() {
    for seed in CHAOS_SEEDS {
        let mut rng = Pcg32::seed_from_u64(seed);
        let packets = random_traffic(&mut rng, 8, 64);
        for fabric in ALL_FABRICS {
            let topo = Topology::columbia(fabric, 8, 2);
            for arb in ALL_ARBITERS {
                let a = simulate(&topo, arb, &packets);
                let b = simulate(&topo, arb, &packets);
                assert_eq!(
                    digest_deliveries(&a),
                    digest_deliveries(&b),
                    "double run diverged (seed {seed:#x}, {fabric:?}, {arb:?})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Executor integration: the contention regime reshapes only the clock.
// ---------------------------------------------------------------------------

/// 2 and 4 ranks always; 8 only under `COLUMBIA_SLOW_TESTS` (CI).
fn parity_widths() -> &'static [usize] {
    if columbia_rt::env::slow_tests() {
        &[2, 4, 8]
    } else {
        &[2, 4]
    }
}

/// Selecting `FabricModel::Contention` must not change a single payload,
/// counter or ledger bit — only the event executor's virtual wakeup
/// times. On the thread backend the selection is a documented no-op.
#[test]
fn contention_regime_is_payload_identical_to_analytic() {
    let spec = HaloWorkload {
        points_per_rank: 16,
        levels: 3,
        cycles: 2,
    };
    for &n in parity_widths() {
        for exec in [Executor::Events, Executor::Threads] {
            let analytic = spec.run(n, &ExecContext::default().with_executor(exec));
            let contended = spec.run(
                n,
                &ExecContext::default()
                    .with_executor(exec)
                    .with_fabric_model(FabricModel::Contention),
            );
            assert_eq!(
                digest_f64s(analytic.rms_history.iter()),
                digest_f64s(contended.rms_history.iter()),
                "residual history diverged under contention ({exec:?}, n={n})"
            );
            assert_eq!(
                digest_traces(&analytic.traces),
                digest_traces(&contended.traces),
                "ledgers diverged under contention ({exec:?}, n={n})"
            );
        }
    }
}

/// Double runs under the contention regime stay bit-identical (the
/// fabric clock is consulted only by the token holder, so its state is a
/// pure function of the send history).
#[test]
fn contention_regime_double_run_is_bit_identical() {
    let spec = HaloWorkload {
        points_per_rank: 16,
        levels: 2,
        cycles: 2,
    };
    let ctx = || {
        ExecContext::default()
            .with_executor(Executor::Events)
            .with_fabric_model(FabricModel::Contention)
    };
    for &n in parity_widths() {
        let a = spec.run(n, &ctx());
        let b = spec.run(n, &ctx());
        assert_eq!(
            digest_f64s(a.rms_history.iter()),
            digest_f64s(b.rms_history.iter()),
            "contention double run diverged at n={n}"
        );
        assert_eq!(
            digest_traces(&a.traces),
            digest_traces(&b.traces),
            "contention double-run ledgers diverged at n={n}"
        );
    }
}

/// The acceptance pin on *real traced traffic*: replaying an 8-rank halo
/// workload's ledgers through the contended Columbia topologies, the
/// InfiniBand-vs-NUMAlink slowdown must exceed what the analytic
/// closed form predicts — the paper's fig15/fig21 degradation emerges
/// from uplink queueing, it is not fitted.
#[test]
fn traced_halo_traffic_shows_emergent_infiniband_degradation() {
    let spec = HaloWorkload {
        points_per_rank: 64,
        levels: 3,
        cycles: 2,
    };
    let report = spec.run(8, &ExecContext::default().with_executor(Executor::Events));
    let flows = flows_from_traces(&report.traces);
    assert!(!flows.is_empty(), "traced workload produced no traffic");

    let contended = |fabric: Fabric| {
        let topo = Topology::columbia(fabric, 8, 2);
        makespan(&simulate(&topo, Arbiter::RoundRobin, &flows))
    };
    let cont_ratio = contended(Fabric::InfiniBand) / contended(Fabric::NumaLink4);
    let ana_ratio = analytic_makespan(Fabric::InfiniBand, 2, &flows)
        / analytic_makespan(Fabric::NumaLink4, 2, &flows);
    assert!(
        cont_ratio > ana_ratio,
        "IB degradation not emergent: contended ratio {cont_ratio} <= analytic {ana_ratio}"
    );
}
