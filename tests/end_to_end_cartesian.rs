//! Cross-crate integration: the full Cart3D-style pipeline.

use columbia_cartesian::{
    build_octree, coarsen_hierarchy, extract_mesh, partition_cells, sslv_geometry, CutCellConfig,
};
use columbia_core::{CartAnalysis, DatabaseFill, DatabaseSpec};
use columbia_euler::{freestream5, EulerParams, EulerSolver};
use columbia_mg::CycleParams;
use columbia_sfc::CurveKind;

#[test]
fn sslv_geometry_to_converged_solution() {
    let geom = sslv_geometry(0.1);
    let config = CutCellConfig::around(&geom, 2.5, 3, 6);
    let tree = build_octree(&geom, &config);
    assert!(tree.is_balanced());
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    mesh.validate().unwrap();
    assert!(mesh.max_closure_defect() < 1e-10);
    assert!(mesh.ncut() > 100);

    let mut solver = EulerSolver::new(
        mesh,
        EulerParams {
            mach: 1.4,
            alpha: 0.0365,
            ..Default::default()
        },
    );
    let h = solver.solve(&CycleParams::default(), 0.0, 25);
    assert!(
        h.orders_reduced() > 2.0,
        "SSLV solve: {} orders",
        h.orders_reduced()
    );
    let f = solver.forces();
    assert!(f.force.x > 0.0, "supersonic stack must have drag: {f:?}");
}

#[test]
fn coarsening_hierarchy_supports_multigrid_and_partitioning() {
    let geom = sslv_geometry(0.0);
    let config = CutCellConfig::around(&geom, 2.5, 3, 6);
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let steps = coarsen_hierarchy(&mesh, 4, 30);
    assert!(steps.len() >= 2, "hierarchy too shallow");
    // Volume conserved through the chain; every coarse mesh remains closed.
    let mut vol = mesh.total_volume();
    for s in &steps {
        assert!((s.coarse.total_volume() - vol).abs() < 1e-9 * vol);
        assert!(s.coarse.max_closure_defect() < 1e-10);
        vol = s.coarse.total_volume();
    }
    // 16-way weighted SFC decomposition balances.
    let p = partition_cells(&mesh, 16);
    assert!(p.imbalance(&mesh.weights) < 1.05);
}

#[test]
fn euler_parallel_matches_serial_on_sslv() {
    let geom = sslv_geometry(0.0);
    let config = CutCellConfig::around(&geom, 2.5, 3, 5);
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let fs = freestream5(1.2, 0.02, 0.0);
    let mut serial = columbia_euler::EulerLevel::new(mesh.clone(), fs, 1.5);
    for _ in 0..2 {
        serial.rk_step();
    }
    let (u, _, _) = columbia_euler::parallel::run_parallel_smoothing(
        &mesh,
        fs,
        1.5,
        4,
        2,
        &mut columbia_comm::ExecContext::default(),
    );
    let mut max_diff = 0.0f64;
    for (c, su) in serial.u.to_aos().iter().enumerate() {
        for k in 0..5 {
            max_diff = max_diff.max((u[c][k] - su[k]).abs());
        }
    }
    assert!(max_diff < 1e-9, "parallel mismatch {max_diff}");
}

#[test]
fn database_fill_trends_are_physical() {
    let analysis = CartAnalysis::default().resolution(3, 5);
    let fill = DatabaseFill::new(analysis, sslv_geometry);
    let spec = DatabaseSpec {
        deflections: vec![0.0],
        machs: vec![0.8, 2.0],
        alphas: vec![0.0, 0.05],
        betas: vec![0.0],
        cycles: 12,
    };
    let db = fill.run(&spec, 2, &mut columbia_core::ExecContext::default());
    assert_eq!(db.len(), 4);
    let fx = |m: f64, a: f64| {
        db.iter()
            .find(|e| e.mach == m && e.alpha == a)
            .unwrap()
            .forces
            .force
    };
    // Drag grows with Mach; lift grows with alpha.
    assert!(fx(2.0, 0.0).x > fx(0.8, 0.0).x);
    assert!(fx(2.0, 0.05).z > fx(2.0, 0.0).z);
}
