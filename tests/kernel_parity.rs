//! Scalar-vs-SIMD kernel parity: the lane-interleaved batch kernels of
//! `columbia_linalg::soa` must be *bit-identical* to the scalar
//! references, at every layer — raw LU/tridiagonal solves, the bench
//! harness's kernel runners, a full `RansLevel` smoothing sweep, the
//! Cart3D Runge-Kutta stage, and a 2-rank domain-decomposed run.
//!
//! This is the contract that lets the SIMD path be the default while
//! every FNV golden in `tests/exec_context.rs` (recorded on the scalar
//! path) keeps holding verbatim.

use columbia_bench::kernels::{self, digest_states};
use columbia_cartesian::{build_octree, extract_mesh, CutCellConfig, Geometry, TriMesh};
use columbia_comm::ExecContext;
use columbia_euler::state::freestream5;
use columbia_euler::EulerLevel;
use columbia_linalg::soa::vec_batch_zero;
use columbia_linalg::{BlockBatch, BlockMat, LinalgError, LANES};
use columbia_mesh::{wing_mesh, Vec3, WingMeshSpec};
use columbia_rans::level::SolverParams;
use columbia_rans::RansLevel;
use columbia_rt::env::KernelKind;
use columbia_rt::Pcg32;
use columbia_sfc::CurveKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counting allocator wrapping [`System`]: per-thread allocation counters
/// so the zero-alloc steady-state assertion below is immune to the test
/// harness running other tests on sibling threads.
struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn alloc_calls_on_this_thread() -> u64 {
    ALLOC_CALLS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn random_mat<const N: usize>(rng: &mut Pcg32, dominance: f64) -> BlockMat<N> {
    let mut m = BlockMat::from_fn(|_, _| rng.gen_f64() - 0.5);
    m.add_diagonal(dominance);
    m
}

/// LU + solve parity for one block width, across conditioning regimes:
/// dominant, barely-conditioned, and near-singular blocks must all give
/// bitwise-equal factorisations and solutions lane by lane.
fn lu_parity_prop<const N: usize>(seed: u64) {
    let mut rng = Pcg32::seed_from_u64(seed);
    for &dominance in &[4.0, 0.5, 1e-8] {
        for _ in 0..16 {
            let mats: Vec<BlockMat<N>> = (0..LANES)
                .map(|_| random_mat(&mut rng, dominance))
                .collect();
            let rhs: Vec<[f64; N]> = (0..LANES)
                .map(|_| std::array::from_fn(|_| rng.gen_f64() - 0.5))
                .collect();
            let batch = BlockBatch::from_lanes(&mats);
            let mut b = vec_batch_zero::<N>();
            for l in 0..LANES {
                for k in 0..N {
                    b[k][l] = rhs[l][k];
                }
            }
            let blu = batch.lu(LANES);
            let x = blu.solve(&b, LANES);
            for l in 0..LANES {
                match mats[l].lu() {
                    Ok(slu) => {
                        assert!(blu.ok()[l], "lane {l} flagged singular, scalar succeeded");
                        let sx = slu.solve(&rhs[l]);
                        for k in 0..N {
                            assert_eq!(
                                sx[k].to_bits(),
                                x[k][l].to_bits(),
                                "lane {l} var {k} diverged (dominance {dominance})"
                            );
                        }
                    }
                    Err(LinalgError::Singular { .. }) => {
                        assert!(!blu.ok()[l], "lane {l} ok, scalar saw singular");
                    }
                }
            }
        }
    }
}

#[test]
fn lu_solve_parity_holds_for_5_and_6_variable_blocks() {
    lu_parity_prop::<5>(11);
    lu_parity_prop::<6>(12);
}

#[test]
fn singular_lane_is_flagged_without_poisoning_its_neighbours() {
    let mut rng = Pcg32::seed_from_u64(7);
    let mut mats: Vec<BlockMat<6>> = (0..LANES).map(|_| random_mat(&mut rng, 4.0)).collect();
    // Lane 2: a rank-deficient block (duplicate the first two rows).
    for c in 0..6 {
        let v = mats[2].get(0, c);
        mats[2].set(1, c, v);
    }
    let batch = BlockBatch::from_lanes(&mats);
    let blu = batch.lu(LANES);
    assert!(!blu.ok()[2]);
    for l in [0usize, 1, 3] {
        assert!(blu.ok()[l]);
        let rhs = [1.0, -1.0, 0.5, 0.25, 2.0, -0.75];
        let mut b = vec_batch_zero::<6>();
        for k in 0..6 {
            b[k][l] = rhs[k];
        }
        let x = blu.solve(&b, LANES);
        let sx = mats[l].lu().unwrap().solve(&rhs);
        for k in 0..6 {
            assert_eq!(sx[k].to_bits(), x[k][l].to_bits());
        }
    }
}

#[test]
fn bench_kernel_runners_agree_at_awkward_sizes() {
    // Partial final batches (n % LANES != 0) are where scatter/gather
    // bugs live; sweep the remainders.
    for n in [1usize, 3, 5, 9, 17] {
        let set = kernels::point_set(n, 99);
        let mut a = vec![[0.0; kernels::NB]; n];
        let mut b = vec![[0.0; kernels::NB]; n];
        kernels::point_lu_scalar(&set, &mut a);
        kernels::point_lu_simd(&set, &mut b);
        assert_eq!(digest_states(&a), digest_states(&b), "n = {n}");
    }
    for nlines in [1usize, 2, 5] {
        let set = kernels::line_set(nlines, 99);
        let mut a = vec![vec![[0.0; kernels::NB]; kernels::LINE_LEN]; nlines];
        let mut b = a.clone();
        let mut sc = columbia_linalg::BlockTridiag::new();
        let mut bc = columbia_linalg::TridiagBatch::new();
        kernels::line_tridiag_scalar(&set, &mut sc, &mut a);
        kernels::line_tridiag_simd(&set, &mut bc, &mut b);
        assert_eq!(
            kernels::digest_lines(&a),
            kernels::digest_lines(&b),
            "nlines = {nlines}"
        );
    }
}

fn rans_level(kernel: KernelKind) -> RansLevel {
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(900)
    });
    let params = SolverParams {
        mach: 0.5,
        kernel: Some(kernel),
        ..Default::default()
    };
    RansLevel::new(mesh, params)
}

#[test]
fn rans_smoothing_sweeps_are_bit_identical_and_flop_matched() {
    let mut scalar = rans_level(KernelKind::Scalar);
    let mut simd = rans_level(KernelKind::Simd);
    for sweep in 0..4 {
        scalar.smooth_sweep();
        simd.smooth_sweep();
        assert_eq!(
            digest_states(&scalar.u.to_aos()),
            digest_states(&simd.u.to_aos()),
            "state diverged at sweep {sweep}"
        );
    }
    assert_eq!(
        scalar.flops.total(),
        simd.flops.total(),
        "ambient FLOP accounting must not depend on the kernel path"
    );
}

/// Satellite of the plane-resident migration: once the per-level scratch
/// (tridiagonal systems, batch buffers, the diag/lamsum pack buffer, the
/// cache-block gather arrays) has grown to its high-water mark, further
/// smoothing sweeps must not touch the allocator at all — on either
/// kernel path.
#[test]
fn steady_state_smoothing_sweeps_allocate_nothing() {
    for kernel in [KernelKind::Scalar, KernelKind::Simd] {
        // A dedicated thread isolates the thread-local counter from
        // whatever the harness allocates on this thread meanwhile.
        let delta = std::thread::spawn(move || {
            let mut lvl = rans_level(kernel);
            lvl.apply_bcs();
            // Warm-up: grows every lazily-sized scratch buffer.
            for _ in 0..2 {
                lvl.smooth_sweep();
            }
            let before = alloc_calls_on_this_thread();
            for _ in 0..3 {
                lvl.smooth_sweep();
            }
            alloc_calls_on_this_thread() - before
        })
        .join()
        .unwrap();
        assert_eq!(
            delta, 0,
            "steady-state smooth_sweep hit the allocator {delta} times ({kernel:?})"
        );
    }
}

fn euler_level(kernel: KernelKind) -> EulerLevel {
    let prof: Vec<(f64, f64)> = (0..=12)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / 12.0;
            (-0.3 * t.cos(), 0.3 * t.sin())
        })
        .collect();
    let geom = Geometry::new(&[TriMesh::body_of_revolution(&prof, 12)]);
    let config = CutCellConfig {
        min_level: 3,
        max_level: 4,
        origin: Vec3::new(-1.0, -1.0, -1.0),
        size: 2.0,
    };
    let tree = build_octree(&geom, &config);
    let mesh = extract_mesh(&tree, &geom, CurveKind::Hilbert, 0.1);
    let mut lvl = EulerLevel::new(mesh, freestream5(0.8, 0.05, 0.0), 1.5);
    lvl.kernel = kernel;
    lvl
}

#[test]
fn euler_rk_steps_are_bit_identical_and_flop_matched() {
    let mut scalar = euler_level(KernelKind::Scalar);
    let mut simd = euler_level(KernelKind::Simd);
    for step in 0..3 {
        scalar.rk_step();
        simd.rk_step();
        assert_eq!(
            digest_states(&scalar.u.to_aos()),
            digest_states(&simd.u.to_aos()),
            "state diverged at step {step}"
        );
    }
    assert_eq!(scalar.flops, simd.flops);
}

#[test]
fn two_rank_parallel_smoothing_agrees_across_kernel_paths() {
    let mesh = wing_mesh(&WingMeshSpec {
        jitter: 0.0,
        ..WingMeshSpec::with_target_points(900)
    });
    let run = |kernel| {
        let params = SolverParams {
            mach: 0.5,
            kernel: Some(kernel),
            ..Default::default()
        };
        columbia_rans::parallel::run_parallel_smoothing(
            &mesh,
            params,
            2,
            3,
            &mut ExecContext::default(),
        )
    };
    let (u_scalar, rms_scalar, _) = run(KernelKind::Scalar);
    let (u_simd, rms_simd, _) = run(KernelKind::Simd);
    assert_eq!(rms_scalar.to_bits(), rms_simd.to_bits());
    assert_eq!(digest_states(&u_scalar), digest_states(&u_simd));
}
