//! Cross-crate integration: CFD database -> 6-DOF flight -> trim search
//! (the full §IV workflow, on real solver output).

use columbia_cartesian::{Geometry, TriMesh};
use columbia_core::{
    golden_section, trim_bisection, AeroDatabase, CartAnalysis, DatabaseFill, DatabaseSpec,
    ExecContext, RigidState, SixDof,
};
use columbia_mesh::Vec3;

/// A finned supersonic body whose elevon gives real pitch authority at the
/// coarse test resolution.
fn geometry(defl: f64) -> Geometry {
    let body = TriMesh::body_of_revolution(
        &[
            (0.0, 0.0),
            (0.4, 0.22),
            (2.4, 0.25),
            (2.8, 0.18),
            (3.0, 0.0),
        ],
        12,
    );
    let mut fin = TriMesh::cuboid(Vec3::new(2.4, -0.05, -0.7), Vec3::new(2.8, 0.05, 0.7));
    fin.rotate(2, Vec3::new(2.6, 0.0, 0.0), defl);
    Geometry::new(&[body, fin])
}

fn build_db() -> AeroDatabase {
    let fill = DatabaseFill::new(CartAnalysis::default().resolution(3, 5), geometry);
    let spec = DatabaseSpec {
        deflections: vec![-0.3, 0.0, 0.3],
        machs: vec![1.5, 2.5],
        alphas: vec![-0.1, 0.0, 0.1],
        betas: vec![0.0],
        cycles: 10,
    };
    AeroDatabase::from_entries(&fill.run(&spec, 4, &mut ExecContext::default()))
        .expect("clean fill has no quarantined entries")
}

#[test]
fn database_flight_and_trim_workflow() {
    let db = build_db();

    // Physicality of the interpolated tables: drag positive everywhere
    // sampled; drag grows with Mach.
    let (f15, _) = db.lookup(0.0, 1.5, 0.0);
    let (f25, _) = db.lookup(0.0, 2.5, 0.0);
    assert!(f15.x > 0.0 && f25.x > f15.x, "{} {}", f15.x, f25.x);

    // Fly: vehicle must decelerate and the trajectory stay finite.
    let vehicle = SixDof {
        db: db.clone(),
        mass: 300.0,
        inertia: Vec3::new(40.0, 40.0, 40.0),
        gravity: Vec3::ZERO,
        rate_damping: Vec3::new(20.0, 20.0, 20.0),
        control: |_| 0.0,
    };
    let traj = vehicle.fly(RigidState::level(2.2), 0.05, 400);
    let last = &traj.last().unwrap().1;
    assert!(last.mach() < 2.2);
    assert!(last.pos.x > 0.0 && last.pos.x.is_finite());

    // Optimisation over the database: minimise drag over the deflection
    // range at Mach 2, alpha 0. The coarse test meshes differ per
    // deflection, so the argmin location is discretisation-sensitive; what
    // the optimiser must guarantee is a bracketed optimum no worse than
    // the endpoints, within the analysis budget.
    let drag = |d: f64| db.lookup(d, 2.0, 0.0).0.x;
    let opt = golden_section(-0.3, 0.3, 1e-3, 50, drag);
    assert!((-0.3..=0.3).contains(&opt.x));
    assert!(opt.value <= drag(-0.3).min(drag(0.3)) + 1e-12);
    assert!(opt.analysis_cycles <= 50);

    // Trim: pitching moment changes sign over the deflection range at some
    // alpha — find the trim deflection by bisection if a bracket exists.
    let m_at = |d: f64| db.lookup(d, 2.0, 0.05).1.y;
    let (mlo, mhi) = (m_at(-0.3), m_at(0.3));
    if mlo * mhi < 0.0 {
        let trim = trim_bisection(-0.3, 0.3, 1e-4, 60, m_at);
        assert!(trim.x > -0.3 && trim.x < 0.3);
        assert!(m_at(trim.x).abs() < m_at(-0.3).abs());
    }
}
