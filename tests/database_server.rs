//! The aero-database server end to end: cache transparency, in-batch
//! dedup, quarantine fallback under injected chaos, and the closed
//! refinement loop through the real `DatabaseFill` re-run path.
//!
//! The server may change *how* a query is answered — cached cell gather,
//! memoised duplicate, nearest-valid fallback — but never *what* a valid
//! answer contains: every path must be bit-identical to the direct table
//! lookup, and every replay bit-identical to the first run.

use columbia_bench::database::{
    cold_queries, degraded_queries, hot_queries, poison_entries, serve_storm, storm_policy,
    synthetic_entries, STORM_SEED,
};
use columbia_cartesian::{Geometry, TriMesh};
use columbia_core::{
    digest_responses, AeroDatabase, CartAnalysis, DatabaseFill, DatabaseServer, DatabaseSpec,
    ExecContext, Fallback, FillPolicy, LookupError, Query, ServePolicy,
};
use columbia_rt::CasePlan;

/// A small body the coarse octree resolves quickly (the server tests need
/// real solver output, not fine aerodynamics).
fn geometry(_defl: f64) -> Geometry {
    let body = TriMesh::body_of_revolution(&[(0.0, 0.0), (0.5, 0.2), (2.5, 0.24), (3.0, 0.0)], 10);
    Geometry::new(&[body])
}

fn small_spec() -> DatabaseSpec {
    DatabaseSpec {
        deflections: vec![0.0, 0.3],
        machs: vec![1.5, 2.5],
        alphas: vec![0.0],
        betas: vec![0.0],
        cycles: 6,
    }
}

/// A chaos plan guaranteed to quarantine at least one of `ncases` cases
/// under a 2-attempt budget: seeded transients, with a deterministic
/// poison fallback if no case happens to fail both attempts.
fn quarantining_plan(seed: u64, ncases: u64) -> CasePlan {
    let plan = CasePlan::transient(seed, 0.4);
    if (0..ncases).any(|c| plan.fails(c, 0) && plan.fails(c, 1)) {
        plan
    } else {
        plan.poison(seed % ncases)
    }
}

#[test]
fn cache_capacity_never_changes_answers_only_stats() {
    let db = AeroDatabase::from_entries(&synthetic_entries()).unwrap();
    let storm = cold_queries(4096, STORM_SEED);
    let serve = |capacity: usize| {
        let policy = ServePolicy {
            cache_capacity: Some(capacity),
            fallback: Fallback::Strict,
            refine_budget: Some(4),
        };
        let mut server = DatabaseServer::new(db.clone(), &policy);
        let responses = serve_storm(&mut server, &storm);
        (digest_responses(&responses), server.stats())
    };
    let (tiny_digest, tiny) = serve(1);
    let (big_digest, big) = serve(4096);
    assert_eq!(
        tiny_digest, big_digest,
        "cache pressure must be invisible in the responses"
    );
    assert!(tiny.evictions > 0 && big.evictions == 0, "{tiny:?} {big:?}");
    assert!(big.cache_hits > tiny.cache_hits, "{tiny:?} {big:?}");
    // And both match the direct table lookup bit for bit.
    let policy = storm_policy(Fallback::Strict);
    let mut server = DatabaseServer::new(db.clone(), &policy);
    for (q, r) in storm.iter().zip(serve_storm(&mut server, &storm)) {
        let (force, moment) = db.lookup(q.deflection, q.mach, q.alpha);
        let r = r.expect("clean table");
        assert_eq!((r.force, r.moment), (force, moment));
    }
}

#[test]
fn in_batch_duplicates_are_answered_once_and_identically() {
    let db = AeroDatabase::from_entries(&synthetic_entries()).unwrap();
    let mut server = DatabaseServer::new(db, &storm_policy(Fallback::Strict));
    let hot = hot_queries(4096, STORM_SEED);
    let batched = server.serve_batch(&hot);
    let stats = server.stats();
    assert!(
        stats.dedup_hits > 3500,
        "a 32-condition storm must dedup almost everything: {stats:?}"
    );
    // One-at-a-time serving (no memo) gives the same answers.
    let mut single = DatabaseServer::new(
        AeroDatabase::from_entries(&synthetic_entries()).unwrap(),
        &storm_policy(Fallback::Strict),
    );
    for (q, r) in hot.iter().zip(&batched) {
        assert_eq!(single.serve_one(*q), *r);
    }
    assert_eq!(single.stats().dedup_hits, 0);
}

#[test]
fn quarantine_fallback_is_typed_deterministic_and_opt_in_across_chaos_seeds() {
    for chaos_seed in [0xA5u64, 0x5EED, 0xBAD_CA5E, 7] {
        let fill = DatabaseFill::new(CartAnalysis::default().resolution(3, 4), geometry);
        let spec = small_spec();
        let plan = quarantining_plan(chaos_seed, spec.ncases() as u64);
        let policy = FillPolicy {
            max_attempts: 2,
            chaos: Some(plan),
        };
        let run = || {
            let mut ctx = ExecContext::default().with_fill(policy.clone());
            fill.run(&spec, 2, &mut ctx)
        };
        let entries = run();
        let quarantined = entries.iter().filter(|e| !e.status.is_ok()).count();
        assert!(quarantined > 0, "seed {chaos_seed:#x} quarantined nothing");

        // Strict construction refuses placeholder loads outright.
        assert!(matches!(
            AeroDatabase::from_entries(&entries),
            Err(columbia_core::TableError::QuarantinedNode { .. })
        ));

        let db = AeroDatabase::from_entries_masked(&entries).unwrap();
        assert_eq!(db.holes(), quarantined);
        let storm = degraded_queries(&db, 512, chaos_seed);

        // Strict service: blocked queries are typed errors, never blends.
        let mut strict = DatabaseServer::new(db.clone(), &storm_policy(Fallback::Strict));
        let strict_responses = serve_storm(&mut strict, &storm);
        let blocked = strict_responses
            .iter()
            .filter(|r| matches!(r, Err(LookupError::QuarantinedRegion { .. })))
            .count();
        assert!(blocked > 0, "hole-seeking storm found no holes");
        assert_eq!(strict.stats().errors as usize, blocked);
        assert_eq!(strict.stats().degraded, 0);
        assert!(strict.pending_refinements() > 0);

        // Opt-in fallback: the same storm degrades instead of erroring,
        // and every degraded answer is a real (valid-node) load.
        let mut nearest = DatabaseServer::new(db.clone(), &storm_policy(Fallback::Nearest));
        let nearest_responses = serve_storm(&mut nearest, &storm);
        assert!(nearest_responses.iter().all(|r| r.is_ok()));
        let degraded = nearest_responses
            .iter()
            .filter(|r| matches!(r, Ok(resp) if resp.degraded))
            .count();
        assert_eq!(
            degraded, blocked,
            "fallback must flag exactly the blocked queries"
        );

        // Bit-identical replay: fill, mask, storm — all of it.
        let replay_entries = run();
        let replay_db = AeroDatabase::from_entries_masked(&replay_entries).unwrap();
        let mut replay = DatabaseServer::new(replay_db, &storm_policy(Fallback::Nearest));
        assert_eq!(
            digest_responses(&serve_storm(&mut replay, &storm)),
            digest_responses(&nearest_responses),
            "chaos seed {chaos_seed:#x} replay diverged"
        );
    }
}

#[test]
fn refinement_reruns_through_the_fill_and_closes_the_holes() {
    let analysis = CartAnalysis::default().resolution(3, 4);
    let fill = DatabaseFill::new(analysis.clone(), geometry);
    let spec = small_spec();

    // Poison one case so the fill leaves exactly one hole.
    let poisoned_case = 1u64;
    let chaos_policy = FillPolicy {
        max_attempts: 2,
        chaos: Some(CasePlan::transient(0, 0.0).poison(poisoned_case)),
    };
    let mut ctx = ExecContext::default().with_fill(chaos_policy);
    let entries = fill.run(&spec, 2, &mut ctx);
    let db = AeroDatabase::from_entries_masked(&entries).unwrap();
    assert_eq!(db.holes(), 1);

    let mut server = DatabaseServer::new(db, &storm_policy(Fallback::Nearest));
    let storm = degraded_queries(server.database(), 64, STORM_SEED);
    let first = serve_storm(&mut server, &storm);
    assert!(first.iter().any(|r| matches!(r, Ok(resp) if resp.degraded)));
    assert!(server.pending_refinements() > 0);

    // Background refill under a clean policy: the re-run goes through
    // run_case (satellite fix), converges, and repairs the node.
    let mut clean_ctx = ExecContext::default();
    let (repaired, failing) = server.refine_with(&fill, 0.0, spec.cycles, &mut clean_ctx);
    assert_eq!((repaired, failing), (1, 0));
    assert_eq!(server.database().holes(), 0);
    assert_eq!(server.stats().refined, 1);

    // The repaired loads are the real solver answer: the served responses
    // now match a clean (never-poisoned) fill bit for bit.
    let clean_entries = fill.run(&spec, 2, &mut ExecContext::default());
    let clean_db = AeroDatabase::from_entries(&clean_entries).unwrap();
    let mut clean_server = DatabaseServer::new(clean_db, &storm_policy(Fallback::Nearest));
    assert_eq!(
        digest_responses(&serve_storm(&mut server, &storm)),
        digest_responses(&serve_storm(&mut clean_server, &storm)),
    );
}

#[test]
fn refinement_drains_hottest_holes_first_within_budget() {
    let mut entries = synthetic_entries();
    poison_entries(&mut entries, 6, STORM_SEED);
    let db = AeroDatabase::from_entries_masked(&entries).unwrap();
    let holes = db.hole_coords();
    let policy = ServePolicy {
        cache_capacity: Some(64),
        fallback: Fallback::Nearest,
        refine_budget: Some(2),
    };
    let mut server = DatabaseServer::new(db.clone(), &policy);
    // Hammer the first hole, touch the others once.
    let (ds, ms, aas) = db.axes();
    let at = |(d, m, a): (usize, usize, usize)| Query {
        deflection: ds[d],
        mach: ms[m],
        alpha: aas[a],
    };
    let mut storm = vec![at(holes[0]); 200];
    storm.extend(holes.iter().skip(1).map(|&h| at(h)));
    let _ = server.serve_batch(&storm);
    assert_eq!(server.pending_refinements(), holes.len());
    let drained = server.drain_refinement();
    assert_eq!(drained.len(), 2, "budget caps the drain");
    assert_eq!(drained[0], holes[0], "hottest hole drains first");
    assert_eq!(server.pending_refinements(), holes.len() - 2);
}
