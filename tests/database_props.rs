//! Property suite for the aero-database lookup path (satellite of the
//! quarantine-safe server PR): random tables and random queries pin the
//! interpolation invariants the server's cached gather relies on —
//! bracket weights in `[0, 1]`, convexity of the blend (answers bounded
//! by the stencil's corner values), edge clamping, and bit-exact
//! server/table agreement.

use columbia_core::{AeroDatabase, DatabaseServer, Fallback, Query, ServePolicy};
use columbia_mesh::Vec3;
use columbia_rt::rng::Pcg32;

/// Random strictly increasing axis of `len` breakpoints in roughly
/// `[lo, hi]` (gaps are random but bounded away from zero).
fn random_axis(rng: &mut Pcg32, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut v = Vec::with_capacity(len);
    let mut x = lo + rng.gen_range(0.0..0.1) * (hi - lo);
    let step = (hi - lo) / len as f64;
    for _ in 0..len {
        v.push(x);
        x += step * rng.gen_range(0.1..=1.0);
    }
    v
}

/// Random filled table with axis lengths in `1..=4` per dimension
/// (length-1 axes exercise the degenerate-axis path).
fn random_db(rng: &mut Pcg32) -> AeroDatabase {
    let nd = rng.gen_range(1usize..5);
    let nm = rng.gen_range(1usize..5);
    let na = rng.gen_range(1usize..5);
    let ds = random_axis(rng, nd, -0.5, 0.5);
    let ms = random_axis(rng, nm, 0.5, 3.0);
    let aas = random_axis(rng, na, -0.2, 0.2);
    let mut force = Vec::with_capacity(nd * nm * na);
    let mut moment = Vec::with_capacity(nd * nm * na);
    for _ in 0..nd * nm * na {
        let v3 = |rng: &mut Pcg32| {
            Vec3::new(
                rng.gen_range(-1.0..=1.0),
                rng.gen_range(-1.0..=1.0),
                rng.gen_range(-1.0..=1.0),
            )
        };
        force.push(v3(rng));
        moment.push(v3(rng));
    }
    AeroDatabase::from_axes(ds, ms, aas, force, moment).expect("axes built strictly increasing")
}

/// Random query over (and 20% beyond) the table envelope.
fn random_query(rng: &mut Pcg32, db: &AeroDatabase) -> (f64, f64, f64) {
    let (ds, ms, aas) = db.axes();
    let sample = |v: &[f64], rng: &mut Pcg32| {
        let (lo, hi) = (v[0], v[v.len() - 1]);
        let pad = 0.2 * (hi - lo).max(0.1);
        rng.gen_range(lo - pad..=hi + pad)
    };
    (sample(ds, rng), sample(ms, rng), sample(aas, rng))
}

columbia_rt::props! {
    config: columbia_rt::props::Config::with_cases(64);

    /// `bracket` always lands inside the axis with a weight in `[0, 1]`,
    /// and reconstructing the coordinate from `(i, t)` recovers the
    /// clamped input.
    fn prop_bracket_weights_in_unit_interval(seed in 0u64..u64::MAX) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let len = rng.gen_range(2usize..12);
        let axis = random_axis(&mut rng, len, -2.0, 2.0);
        for _ in 0..32 {
            let x = rng.gen_range(-3.0..=3.0);
            let (i, t) = AeroDatabase::bracket(&axis, x);
            assert!(i + 1 < axis.len(), "bracket index {i} out of axis");
            assert!((0.0..=1.0).contains(&t), "weight {t} outside [0, 1]");
            let rebuilt = axis[i] + t * (axis[i + 1] - axis[i]);
            let clamped = x.clamp(axis[0], axis[len - 1]);
            assert!(
                (rebuilt - clamped).abs() <= 1e-12 * (1.0 + clamped.abs()),
                "seed {seed}: bracket({x}) = ({i}, {t}) rebuilds {rebuilt}, want {clamped}"
            );
        }
    }

    /// The trilinear blend is convex: every component of a looked-up load
    /// lies within the min/max of the stencil's corner nodes.
    fn prop_lookup_is_convex_in_corner_values(seed in 0u64..u64::MAX) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let db = random_db(&mut rng);
        for _ in 0..16 {
            let (d, m, a) = random_query(&mut rng, &db);
            let [(id, _), (im, _), (ia, _)] = db.cell(d, m, a);
            let (nd, nm, na) = db.shape();
            let mut lo = [f64::INFINITY; 6];
            let mut hi = [f64::NEG_INFINITY; 6];
            for corner in 0..8 {
                let cd = (id + (corner >> 2 & 1)).min(nd - 1);
                let cm = (im + (corner >> 1 & 1)).min(nm - 1);
                let ca = (ia + (corner & 1)).min(na - 1);
                let (f, mo) = db.node(cd, cm, ca);
                for (k, c) in [f.x, f.y, f.z, mo.x, mo.y, mo.z].into_iter().enumerate() {
                    lo[k] = lo[k].min(c);
                    hi[k] = hi[k].max(c);
                }
            }
            let (f, mo) = db.lookup(d, m, a);
            for (k, c) in [f.x, f.y, f.z, mo.x, mo.y, mo.z].into_iter().enumerate() {
                assert!(
                    c >= lo[k] - 1e-12 && c <= hi[k] + 1e-12,
                    "seed {seed}: component {k} = {c} escapes [{}, {}]",
                    lo[k],
                    hi[k]
                );
            }
        }
    }

    /// Out-of-envelope queries clamp: the answer equals the answer at the
    /// nearest in-envelope coordinate, bit for bit.
    fn prop_lookup_clamps_at_the_envelope(seed in 0u64..u64::MAX) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let db = random_db(&mut rng);
        let (ds, ms, aas) = db.axes();
        let (ds, ms, aas) = (ds.to_vec(), ms.to_vec(), aas.to_vec());
        let clamp = |v: &[f64], x: f64| x.clamp(v[0], v[v.len() - 1]);
        for _ in 0..16 {
            let (d, m, a) = random_query(&mut rng, &db);
            let far = db.lookup(d, m, a);
            let near = db.lookup(clamp(&ds, d), clamp(&ms, m), clamp(&aas, a));
            assert_eq!(far, near, "seed {seed}: clamped lookup diverged");
        }
    }

    /// The server is transparent on clean tables: served answers equal the
    /// direct table lookup bit for bit, for every cache capacity.
    fn prop_server_matches_table_bitwise(seed in 0u64..u64::MAX) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let db = random_db(&mut rng);
        let queries: Vec<Query> = (0..48)
            .map(|_| random_query(&mut rng, &db).into())
            .collect();
        for capacity in [1usize, 3, 64] {
            let policy = ServePolicy {
                cache_capacity: Some(capacity),
                fallback: Fallback::Strict,
                refine_budget: None,
            };
            let mut server = DatabaseServer::new(db.clone(), &policy);
            for (q, r) in queries.iter().zip(server.serve_batch(&queries)) {
                let (force, moment) = db.lookup(q.deflection, q.mach, q.alpha);
                let r = r.expect("clean table never errors");
                assert!(!r.degraded);
                assert_eq!(
                    (r.force, r.moment),
                    (force, moment),
                    "seed {seed}: capacity {capacity} diverged from the table"
                );
            }
        }
    }
}
